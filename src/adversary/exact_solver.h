// ExactSolver: exact and certified-witness play for the broadcast game.
//
// Definition 2.3 makes t*(T_n) the value of a one-player game: the
// adversary repeatedly picks any rooted tree on [n] to maximize the
// number of rounds until the product graph has a full row. Since
// processes have no choices, the value is the longest path from the
// identity state to a broadcast state in the (finite, acyclic-by-
// monotonicity) state graph — computable exactly by memoized DFS over
// all n^(n−1) moves per state.
//
// States are stored as row arrays of 16-bit masks (row y = Heard(y)),
// which carries the solver to n ≤ 16; the historical packed-uint64
// encoding (row y in byte y, n ≤ 8) survives as static helpers. The
// memo canonicalizes states under simultaneous node relabeling with an
// orbit-pruned permutation scan: nodes are partitioned by refined
// degree-style invariants and only permutations respecting the
// partition are tried — typically a handful instead of n!.
//
// Two query modes:
//   solve()/optimalPlay() — the exhaustive game value. Feasible while
//   the full move pool n^(n−1) is enumerable (n ≤ 8 structurally;
//   practical through n = 5).
//   witnessPlay(target) — a certified lower-bound line of play: a
//   depth-first search for `target` rounds of survival, pruned by a
//   canonical-form failure memo. For n ≤ 8 the search branches over the
//   complete move pool; beyond that over a structured pool (damage
//   trees, freezes, heard-order paths, noisy damage trees). The
//   returned sequence replays to exactly its length — reaching the
//   ⌈(3n−1)/2⌉−2 bound of [14] through n = 9 in seconds.
//
// This module validates everything else at small scale: the simulators,
// the bound formulas of Theorem 3.1, and how close the heuristic
// adversaries come to optimal play.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

struct ExactOptions {
  /// Canonicalize states under node relabeling (strongly recommended).
  bool canonicalize = true;
  /// Hard cap on recursion depth as a safety net; 0 = n² (the trivial
  /// bound: at least one new edge appears per round).
  std::size_t depthCap = 0;
  /// Drop successors that are row-wise supersets of another successor.
  /// The game value is antitone under row-wise inclusion (a state that
  /// has heard strictly more is closer to broadcast), so only the
  /// ⊆-minimal successors can carry the max.
  bool pruneDominated = true;
};

struct ExactResult {
  /// The exact game value t*(T_n).
  std::size_t tStar = 0;
  /// Distinct (canonical) states memoized.
  std::uint64_t statesMemoized = 0;
  /// Total successor states evaluated (after per-state deduplication).
  std::uint64_t successorsExpanded = 0;
  /// Successors dropped by the row-wise dominance filter.
  std::uint64_t dominatedPruned = 0;
};

struct ExactWitnessOptions {
  /// Search-node budget; the search gives up (returning the best play
  /// found at smaller targets) once exhausted.
  std::uint64_t nodeBudget = 2'000'000;
  /// Noisy damage trees per node in the structured pool (n > 8 only).
  std::size_t noisyMovesPerNode = 2;
  /// Children explored per node, best-potential first. Bounds memory on
  /// the exhaustive pool, where one state can have millions of distinct
  /// successors.
  std::size_t maxChildrenPerNode = 4096;
};

class ExactSolver {
 public:
  /// Row-array encoding limit: 16 rows of 16-bit masks.
  static constexpr std::size_t kMaxN = 16;

  /// Precondition: 2 ≤ n ≤ kMaxN. The exhaustive queries additionally
  /// require the full move pool to be enumerable (n ≤ 8).
  explicit ExactSolver(std::size_t n, ExactOptions options = {});

  /// Computes t*(T_n). Requires n ≤ 8 (throws AssertionError beyond);
  /// memory and time grow steeply — n ≤ 5 runs in well under a second.
  [[nodiscard]] ExactResult solve();

  /// Computes t*(T_n) and extracts one optimal line of play: a concrete
  /// tree sequence achieving the game value from the identity state.
  /// The sequence is itself a machine-checkable lower-bound certificate
  /// (replay it on a simulator and count rounds). Requires n ≤ 8.
  [[nodiscard]] std::vector<RootedTree> optimalPlay();

  /// Searches for a play achieving `targetRounds` and returns the
  /// longest certified play found (its length may fall short of the
  /// target when the search space or node budget is exhausted; it never
  /// exceeds the target). The returned sequence replays from the
  /// identity state to broadcast in exactly its length — verified
  /// internally before returning. Unlike solve(), works for all
  /// 2 ≤ n ≤ kMaxN: the branching pool is complete for n ≤ 8 and
  /// structured beyond.
  [[nodiscard]] std::vector<RootedTree> witnessPlay(
      std::size_t targetRounds, ExactWitnessOptions witnessOptions = {});

  /// Packs a heard-of matrix (row y = Heard(y)) into the historical
  /// uint64 encoding (n ≤ 8, row y in byte y); exposed for tests.
  [[nodiscard]] static std::uint64_t encodeIdentity(std::size_t n);

  /// Applies a tree (as a parent array) to an encoded state.
  [[nodiscard]] static std::uint64_t applyTreeEncoded(
      std::uint64_t state, const std::vector<std::size_t>& parents);

  /// True when some process is heard by everyone in the encoded state.
  [[nodiscard]] static bool isBroadcastState(std::uint64_t state,
                                             std::size_t n);

 private:
  std::size_t n_;
  ExactOptions options_;
};

}  // namespace dynbcast
