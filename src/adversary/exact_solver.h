// ExactSolver: the exact broadcast game value t*(T_n) for small n.
//
// Definition 2.3 makes t*(T_n) the value of a one-player game: the
// adversary repeatedly picks any rooted tree on [n] to maximize the
// number of rounds until the product graph has a full row. Since
// processes have no choices, the value is the longest path from the
// identity state to a broadcast state in the (finite, acyclic-by-
// monotonicity) state graph — computable exactly by memoized DFS over
// all n^(n−1) moves per state.
//
// The heard-of matrix of an n ≤ 8 game packs into one uint64_t (row y in
// byte y), and states are canonicalized under simultaneous node
// relabeling (row and bit permutation), which shrinks the memo by
// roughly n!. Practical through n = 5 (625 moves/state) and, with
// patience, n = 6 (7776 moves/state).
//
// This module validates everything else at small scale: the simulators,
// the bound formulas of Theorem 3.1, and how close the heuristic
// adversaries come to optimal play.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

struct ExactOptions {
  /// Canonicalize states under node relabeling (strongly recommended).
  bool canonicalize = true;
  /// Hard cap on recursion depth as a safety net; 0 = n² (the trivial
  /// bound: at least one new edge appears per round).
  std::size_t depthCap = 0;
};

struct ExactResult {
  /// The exact game value t*(T_n).
  std::size_t tStar = 0;
  /// Distinct (canonical) states memoized.
  std::uint64_t statesMemoized = 0;
  /// Total successor states evaluated (after per-state deduplication).
  std::uint64_t successorsExpanded = 0;
};

class ExactSolver {
 public:
  /// Precondition: 2 ≤ n ≤ 8 (the uint64 packing limit). Memory and time
  /// grow steeply; n ≤ 5 runs in well under a second.
  explicit ExactSolver(std::size_t n, ExactOptions options = {});

  /// Computes t*(T_n).
  [[nodiscard]] ExactResult solve();

  /// Computes t*(T_n) and extracts one optimal line of play: a concrete
  /// tree sequence achieving the game value from the identity state.
  /// The sequence is itself a machine-checkable lower-bound certificate
  /// (replay it on a simulator and count rounds).
  [[nodiscard]] std::vector<RootedTree> optimalPlay();

  /// Packs a heard-of matrix (row y = Heard(y)) into the solver encoding;
  /// exposed for tests.
  [[nodiscard]] static std::uint64_t encodeIdentity(std::size_t n);

  /// Applies a tree (as a parent array) to an encoded state.
  [[nodiscard]] static std::uint64_t applyTreeEncoded(
      std::uint64_t state, const std::vector<std::size_t>& parents);

  /// True when some process is heard by everyone in the encoded state.
  [[nodiscard]] static bool isBroadcastState(std::uint64_t state,
                                             std::size_t n);

 private:
  std::size_t n_;
  ExactOptions options_;
};

}  // namespace dynbcast
