#include "src/adversary/beam.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "src/adversary/adaptive.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/assert.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {

namespace {

struct BeamState {
  std::vector<DynBitset> heard;
  std::vector<std::size_t> coverage;
  double potential = 0.0;
  /// Lineage: index of the parent state in the previous level plus the
  /// move that produced this state.
  std::size_t parentIndex = 0;
  RootedTree move = RootedTree::trivial();
};

std::uint64_t hashHeard(const std::vector<DynBitset>& heard) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ heard.size();
  for (const DynBitset& row : heard) {
    h ^= row.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

double potentialOfCoverage(const std::vector<std::size_t>& cov) {
  double p = 0.0;
  for (const std::size_t c : cov) {
    p += std::exp2(static_cast<double>(std::min<std::size_t>(c, 50)));
  }
  return p;
}

std::vector<std::size_t> topLeaders(const std::vector<std::size_t>& coverage,
                                    std::size_t depth) {
  std::vector<std::size_t> ids(coverage.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t take = std::min(depth, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::size_t a, std::size_t b) {
                      if (coverage[a] != coverage[b]) {
                        return coverage[a] > coverage[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<RootedTree> movesFor(const BeamState& state, Rng& rng,
                                 const BeamConfig& config) {
  const std::size_t n = state.heard.size();
  std::vector<RootedTree> moves;
  if (config.structuredMoves) {
    const BroadcastSim sim =
        BroadcastSim::fromHeard(std::vector<DynBitset>(state.heard));
    std::vector<std::size_t> base(n);
    std::iota(base.begin(), base.end(), std::size_t{0});
    moves.push_back(
        makePath(freezeOrdering(sim, topLeaders(state.coverage, 1), base)));
    moves.push_back(
        makePath(freezeOrdering(sim, topLeaders(state.coverage, 2), base)));
    const std::size_t minCov = static_cast<std::size_t>(
        std::min_element(state.coverage.begin(), state.coverage.end()) -
        state.coverage.begin());
    moves.push_back(buildDamageGreedyTree(sim, state.coverage, minCov));
    moves.push_back(
        buildDamageGreedyTree(sim, state.coverage, rng.uniform(n)));
    // Noisy damage trees: balanced-coverage structure with variety — the
    // beam's main exploration device (plain random trees are too weak).
    for (std::size_t i = 0; i < config.randomMovesPerState; ++i) {
      if (config.noiseAmplitude > 0.0) {
        moves.push_back(buildNoisyDamageTree(
            sim, state.coverage, rng.uniform(n), config.noiseAmplitude,
            rng));
      } else {
        moves.push_back(
            buildDamageGreedyTree(sim, state.coverage, rng.uniform(n)));
      }
    }
  }
  for (std::size_t i = 0; i < config.randomMovesPerState / 2 + 1; ++i) {
    if (i % 2 == 0) {
      moves.push_back(randomPath(n, rng));
    } else {
      moves.push_back(randomRootedTree(n, rng));
    }
  }
  return moves;
}

}  // namespace

BeamResult beamSearchWitness(std::size_t n, std::uint64_t seed,
                             BeamConfig config) {
  DYNBCAST_ASSERT(n >= 2);
  Rng rng(seed);
  const std::size_t cap =
      config.maxRounds != 0 ? config.maxRounds : n * n;

  // Level 0: the identity state.
  BeamState initial;
  initial.heard.assign(n, DynBitset(n));
  for (std::size_t y = 0; y < n; ++y) initial.heard[y].set(y);
  initial.coverage.assign(n, 1);
  initial.potential = potentialOfCoverage(initial.coverage);

  // History of levels for lineage reconstruction: per level, the list of
  // surviving states (with parentIndex into the previous level).
  std::vector<std::vector<BeamState>> levels;
  levels.push_back({std::move(initial)});

  BeamResult result;
  // One scratch arena serves every candidate evaluation in the search:
  // rejected candidates (the vast majority) no longer allocate anything,
  // and survivors copy their post-move state straight out of the scratch
  // instead of re-applying the tree to a fresh matrix.
  EvalScratch scratch;
  // The final move of any lineage completes broadcast, so the achieved
  // rounds = (levels survived) + 1. Track the last level with survivors.
  while (levels.back().size() > 0 && levels.size() <= cap) {
    const std::vector<BeamState>& current = levels.back();
    std::vector<BeamState> successors;
    std::unordered_set<std::uint64_t> seen;
    for (std::size_t si = 0; si < current.size(); ++si) {
      const BeamState& state = current[si];
      for (RootedTree& move : movesFor(state, rng, config)) {
        ++result.statesExpanded;
        const DelayScore score =
            evaluateCandidate(state.heard, state.coverage, move, scratch);
        if (score.finishes) continue;  // dead lineage beyond this move
        if (!seen.insert(hashHeard(scratch.heard)).second) continue;
        BeamState next;
        next.heard = scratch.heard;
        next.coverage = scratch.coverage;
        next.potential = score.potential;
        next.parentIndex = si;
        next.move = std::move(move);
        successors.push_back(std::move(next));
      }
    }
    if (successors.empty()) break;  // every move finishes: game over
    // Prune: elite slots by ascending potential, the rest random.
    if (successors.size() > config.beamWidth) {
      const std::size_t elite =
          config.beamWidth -
          config.beamWidth * config.diversityPercent / 100;
      std::partial_sort(successors.begin(),
                        successors.begin() +
                            static_cast<std::ptrdiff_t>(elite),
                        successors.end(),
                        [](const BeamState& a, const BeamState& b) {
                          return a.potential < b.potential;
                        });
      // Shuffle the tail and keep the first (beamWidth − elite) of it.
      for (std::size_t i = elite; i < successors.size(); ++i) {
        const std::size_t j =
            i + rng.uniform(successors.size() - i);
        std::swap(successors[i], successors[j]);
      }
      successors.resize(config.beamWidth);
    }
    levels.push_back(std::move(successors));
  }

  // Longest lineage: all states in the last non-empty level survived
  // levels.size()−1 rounds; one more (forced) round finishes the game.
  const std::size_t survivedLevels = levels.size() - 1;
  result.rounds = survivedLevels + 1;

  // Reconstruct the witness from any state in the deepest level (they
  // all achieve the same length); finish with a star from a process
  // whose heard set is full-enough (any star works: it completes within
  // at most a few rounds — we instead pick a finishing move explicitly).
  std::vector<RootedTree> witness(survivedLevels + 1,
                                  RootedTree::trivial());
  std::size_t idx = 0;
  for (std::size_t level = survivedLevels; level >= 1; --level) {
    const BeamState& state = levels[level][idx];
    witness[level - 1] = state.move;
    idx = state.parentIndex;
  }
  // Final finishing move: from the deepest state, any move ends the game
  // within a few rounds; find one that finishes immediately (a star from
  // the process with the largest heard set always does after one round
  // if its heard set is full; otherwise search the structured moves).
  {
    const BeamState& last = levels[survivedLevels][0];
    bool placed = false;
    Rng finisher(seed ^ 0xfeedull);
    for (int attempt = 0; attempt < 512 && !placed; ++attempt) {
      RootedTree move = attempt == 0 ? makeStar(n, 0)
                                     : randomRootedTree(n, finisher);
      const DelayScore s =
          evaluateCandidate(last.heard, last.coverage, move, scratch);
      if (s.finishes) {
        witness[survivedLevels] = std::move(move);
        placed = true;
      }
    }
    if (!placed) {
      // Theoretically impossible to need more, but stay safe: replay will
      // then report a shorter/longer round count and the caller notices.
      witness[survivedLevels] = makeStar(n, 0);
    }
  }
  result.witness = std::move(witness);
  return result;
}

std::size_t verifyWitness(std::size_t n,
                          const std::vector<RootedTree>& trees) {
  BroadcastSim sim(n);
  for (const RootedTree& t : trees) {
    sim.applyTree(t);
    if (sim.broadcastDone()) return sim.round();
  }
  return 0;
}

}  // namespace dynbcast
