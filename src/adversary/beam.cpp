#include "src/adversary/beam.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/adversary/adaptive.h"
#include "src/adversary/search_tree.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/assert.h"
#include "src/support/hashing.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {

namespace {

/// A frontier state: the game position plus its arena node (whose parent
/// chain is the lineage that reached it). The moves themselves live in
/// the arena, not here.
struct FrontierState {
  std::vector<DynBitset> heard;
  std::vector<std::size_t> coverage;
  double potential = 0.0;
  std::uint32_t nodeId = SearchTreeArena::kNoNode;
};

/// A successor candidate awaiting pruning; committed to the arena only
/// if it survives (pruned candidates never allocate a node).
struct Candidate {
  std::vector<DynBitset> heard;
  std::vector<std::size_t> coverage;
  double potential = 0.0;
  std::uint32_t parentId = SearchTreeArena::kNoNode;
  RootedTree move = RootedTree::trivial();
};

double potentialOfCoverage(const std::vector<std::size_t>& cov) {
  double p = 0.0;
  for (const std::size_t c : cov) {
    p += std::exp2(static_cast<double>(std::min<std::size_t>(c, 50)));
  }
  return p;
}

std::vector<std::size_t> topLeaders(const std::vector<std::size_t>& coverage,
                                    std::size_t depth) {
  std::vector<std::size_t> ids(coverage.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t take = std::min(depth, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::size_t a, std::size_t b) {
                      if (coverage[a] != coverage[b]) {
                        return coverage[a] > coverage[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<RootedTree> movesFor(const FrontierState& state, Rng& rng,
                                 const BeamConfig& config) {
  const std::size_t n = state.heard.size();
  std::vector<RootedTree> moves;
  if (config.structuredMoves) {
    const BroadcastSim sim =
        BroadcastSim::fromHeard(std::vector<DynBitset>(state.heard));
    std::vector<std::size_t> base(n);
    std::iota(base.begin(), base.end(), std::size_t{0});
    moves.push_back(
        makePath(freezeOrdering(sim, topLeaders(state.coverage, 1), base)));
    moves.push_back(
        makePath(freezeOrdering(sim, topLeaders(state.coverage, 2), base)));
    const std::size_t minCov = static_cast<std::size_t>(
        std::min_element(state.coverage.begin(), state.coverage.end()) -
        state.coverage.begin());
    moves.push_back(buildDamageGreedyTree(sim, state.coverage, minCov));
    moves.push_back(
        buildDamageGreedyTree(sim, state.coverage, rng.uniform(n)));
    // Noisy damage trees: balanced-coverage structure with variety — the
    // beam's main exploration device (plain random trees are too weak).
    for (std::size_t i = 0; i < config.randomMovesPerState; ++i) {
      if (config.noiseAmplitude > 0.0) {
        moves.push_back(buildNoisyDamageTree(
            sim, state.coverage, rng.uniform(n), config.noiseAmplitude,
            rng));
      } else {
        moves.push_back(
            buildDamageGreedyTree(sim, state.coverage, rng.uniform(n)));
      }
    }
  }
  for (std::size_t i = 0; i < config.randomMovesPerState / 2 + 1; ++i) {
    if (i % 2 == 0) {
      moves.push_back(randomPath(n, rng));
    } else {
      moves.push_back(randomRootedTree(n, rng));
    }
  }
  return moves;
}

/// True when `moves[0..index)` already contains moves[index] — the same
/// parent array reached again through a different generator. Duplicate
/// moves from one state produce byte-identical successors, so skipping
/// them before evaluation changes nothing downstream.
bool isDuplicateMove(const std::vector<RootedTree>& moves,
                     std::size_t index) {
  for (std::size_t i = 0; i < index; ++i) {
    if (moves[i] == moves[index]) return true;
  }
  return false;
}

}  // namespace

void validateBeamConfig(const BeamConfig& config) {
  if (config.beamWidth < 1) {
    throw std::invalid_argument("beam config: width must be >= 1 (got " +
                                std::to_string(config.beamWidth) + ")");
  }
  if (config.diversityPercent > 100) {
    throw std::invalid_argument(
        "beam config: diversity must be <= 100 percent (got " +
        std::to_string(config.diversityPercent) + ")");
  }
}

BeamResult beamSearchWitness(std::size_t n, std::uint64_t seed,
                             BeamConfig config) {
  DYNBCAST_ASSERT(n >= 2);
  validateBeamConfig(config);
  Rng rng(seed);
  const std::size_t cap =
      config.maxRounds != 0 ? config.maxRounds : n * n;

  // The explored tree: frontier states hold one arena reference each;
  // pruned branches are reclaimed as soon as their last leaf dies.
  SearchTreeArena arena(config.beamWidth * 8 + 64);
  TranspositionTable table(config.beamWidth * 16);

  // Level 0: the identity state.
  FrontierState initial;
  initial.heard.assign(n, DynBitset(n));
  for (std::size_t y = 0; y < n; ++y) initial.heard[y].set(y);
  initial.coverage.assign(n, 1);
  initial.potential = potentialOfCoverage(initial.coverage);
  initial.nodeId = arena.acquireRoot();

  std::vector<FrontierState> frontier;
  frontier.push_back(std::move(initial));

  BeamResult result;
  // One scratch arena serves every candidate evaluation in the search:
  // rejected candidates (the vast majority) no longer allocate anything,
  // and survivors copy their post-move state straight out of the scratch
  // instead of re-applying the tree to a fresh matrix.
  EvalScratch scratch = EvalScratch::forProcessCount(n);
  // The final move of any lineage completes broadcast, so the achieved
  // rounds = (levels survived) + 1; expanding only while survived + 1 <
  // cap keeps the reported rounds within the documented maxRounds cap.
  std::size_t survived = 0;
  while (survived + 1 < cap) {
    std::vector<Candidate> successors;
    table.clear();
    for (FrontierState& state : frontier) {
      std::vector<RootedTree> moves = movesFor(state, rng, config);
      for (std::size_t mi = 0; mi < moves.size(); ++mi) {
        ++result.movesGenerated;
        if (isDuplicateMove(moves, mi)) continue;
        ++result.statesExpanded;
        const DelayScore score =
            evaluateCandidate(state.heard, state.coverage, moves[mi],
                              scratch);
        if (score.finishes) continue;  // dead lineage beyond this move
        // Collision-safe dedup: a digest hit is only merged after the
        // full heard matrices compare equal (first-seen state wins).
        const std::uint64_t digest = hashHeardMatrix(scratch.heard);
        const TranspositionTable::InsertResult ins = table.insertOrFind(
            digest, static_cast<std::uint32_t>(successors.size()),
            [&](std::uint32_t payload) {
              return successors[payload].heard == scratch.heard;
            });
        if (!ins.inserted) {
          ++result.transpositionHits;
          continue;
        }
        Candidate next;
        next.heard = scratch.heard;
        next.coverage = scratch.coverage;
        next.potential = score.potential;
        next.parentId = state.nodeId;
        next.move = std::move(moves[mi]);
        successors.push_back(std::move(next));
      }
    }
    result.uniqueStates += successors.size();
    result.hashCollisions = table.hashCollisions();
    if (successors.empty()) break;  // every move finishes: game over
    // Prune: elite slots by ascending potential, the rest random.
    if (successors.size() > config.beamWidth) {
      const std::size_t elite =
          config.beamWidth -
          config.beamWidth * config.diversityPercent / 100;
      std::partial_sort(successors.begin(),
                        successors.begin() +
                            static_cast<std::ptrdiff_t>(elite),
                        successors.end(),
                        [](const Candidate& a, const Candidate& b) {
                          return a.potential < b.potential;
                        });
      // Shuffle the tail and keep the first (beamWidth − elite) of it.
      for (std::size_t i = elite; i < successors.size(); ++i) {
        const std::size_t j =
            i + rng.uniform(successors.size() - i);
        std::swap(successors[i], successors[j]);
      }
      successors.resize(config.beamWidth);
    }
    // Commit survivors to the arena, then drop the old frontier's
    // references; branches with no surviving descendant are reclaimed.
    std::vector<FrontierState> next;
    next.reserve(successors.size());
    for (Candidate& c : successors) {
      FrontierState s;
      s.heard = std::move(c.heard);
      s.coverage = std::move(c.coverage);
      s.potential = c.potential;
      s.nodeId = arena.acquireChild(c.parentId, std::move(c.move));
      next.push_back(std::move(s));
    }
    for (const FrontierState& old : frontier) arena.release(old.nodeId);
    frontier = std::move(next);
    ++survived;
  }

  result.rounds = survived + 1;
  result.arenaPeakNodes = arena.peakLiveNodes();

  // Reconstruct the witness from the frontier's first state (all states
  // in the final frontier achieve the same length) by walking arena
  // parents, then append one finishing move.
  std::vector<RootedTree> witness = arena.lineage(frontier.front().nodeId);
  DYNBCAST_ASSERT(witness.size() == survived);
  // Final finishing move: from the deepest state, any move ends the game
  // within a few rounds; find one that finishes immediately (a star from
  // the process with the largest heard set always does after one round
  // if its heard set is full; otherwise search the structured moves).
  {
    const FrontierState& last = frontier.front();
    bool placed = false;
    Rng finisher(seed ^ 0xfeedull);
    for (int attempt = 0; attempt < 512 && !placed; ++attempt) {
      RootedTree move = attempt == 0 ? makeStar(n, 0)
                                     : randomRootedTree(n, finisher);
      const DelayScore s =
          evaluateCandidate(last.heard, last.coverage, move, scratch);
      if (s.finishes) {
        witness.push_back(std::move(move));
        placed = true;
      }
    }
    if (!placed) {
      // Theoretically impossible to need more, but stay safe: replay will
      // then report a shorter/longer round count and the caller notices.
      witness.push_back(makeStar(n, 0));
    }
  }
  for (const FrontierState& state : frontier) arena.release(state.nodeId);
  result.witness = std::move(witness);
  return result;
}

std::size_t verifyWitness(std::size_t n,
                          const std::vector<RootedTree>& trees) {
  BroadcastSim sim(n);
  for (const RootedTree& t : trees) {
    sim.applyTree(t);
    if (sim.broadcastDone()) return sim.round();
  }
  return 0;
}

}  // namespace dynbcast
