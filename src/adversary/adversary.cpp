#include "src/adversary/adversary.h"

#include <cmath>

namespace dynbcast {

BroadcastRun runAdversary(std::size_t n, Adversary& adversary,
                          std::size_t maxRounds, bool recordHistory) {
  adversary.reset();
  return runBroadcast(
      n,
      [&adversary](const BroadcastSim& state) {
        return adversary.nextTree(state);
      },
      maxRounds, recordHistory);
}

BroadcastRun runAdversaryGossip(std::size_t n, Adversary& adversary,
                                std::size_t maxRounds, bool recordHistory) {
  adversary.reset();
  return runGossip(
      n,
      [&adversary](const BroadcastSim& state) {
        return adversary.nextTree(state);
      },
      maxRounds, recordHistory);
}

std::size_t defaultRoundCap(std::size_t n) {
  // ⌈(1+√2)n − 1⌉ plus slack; the theorem says no adversary can reach it.
  const double ub = std::ceil((1.0 + std::sqrt(2.0)) * static_cast<double>(n));
  return static_cast<std::size_t>(ub) + 16;
}

}  // namespace dynbcast
