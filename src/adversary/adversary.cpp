#include "src/adversary/adversary.h"

#include <cmath>
#include <stdexcept>

#include "src/sim/batch_sim.h"
#include "src/support/assert.h"

namespace dynbcast {

const RootedTree& Adversary::obliviousTree(std::size_t) {
  throw std::logic_error("obliviousTree() called on adaptive adversary '" +
                         name() + "' (oblivious() is false)");
}

BroadcastRun runAdversary(std::size_t n, Adversary& adversary,
                          std::size_t maxRounds, bool recordHistory) {
  adversary.reset();
  return runBroadcast(
      n,
      [&adversary](const BroadcastSim& state) {
        return adversary.nextTree(state);
      },
      maxRounds, recordHistory);
}

BroadcastRun runAdversaryGossip(std::size_t n, Adversary& adversary,
                                std::size_t maxRounds, bool recordHistory) {
  adversary.reset();
  return runGossip(
      n,
      [&adversary](const BroadcastSim& state) {
        return adversary.nextTree(state);
      },
      maxRounds, recordHistory);
}

std::vector<BroadcastRun> runObliviousBatch(
    std::size_t n, const std::vector<Adversary*>& lanes,
    std::size_t maxRounds) {
  DYNBCAST_ASSERT(!lanes.empty());
  for (Adversary* lane : lanes) {
    DYNBCAST_ASSERT(lane != nullptr);
    DYNBCAST_ASSERT_MSG(lane->oblivious(),
                        "batched execution requires oblivious adversaries");
    lane->reset();
  }
  std::vector<BroadcastRun> runs(lanes.size());
  BatchBroadcastSim sim(n, lanes.size());
  const auto retire = [&sim, &runs] {
    for (const std::size_t origin : sim.retireBroadcastDone()) {
      runs[origin].rounds = sim.round();
      runs[origin].completed = true;
    }
  };
  retire();  // n == 1 completes at round 0, as in the scalar driver
  // References only — each adversary owns its returned tree until its
  // next obliviousTree() call, and all of this round's references are
  // consumed before any lane is asked again.
  std::vector<const RootedTree*> trees;
  trees.reserve(lanes.size());
  while (sim.width() > 0 && sim.round() < maxRounds) {
    trees.clear();
    for (std::size_t b = 0; b < sim.width(); ++b) {
      trees.push_back(&lanes[sim.originalLane(b)]->obliviousTree(sim.round()));
    }
    bool shared = true;
    for (std::size_t b = 1; shared && b < trees.size(); ++b) {
      shared = trees[b] == trees[0] || *trees[b] == *trees[0];
    }
    if (shared) {
      sim.applyTree(*trees[0]);
    } else {
      sim.applyTrees(trees);
    }
    retire();
  }
  // Lanes still live stalled at the cap — same report as the scalar
  // driver: rounds == maxRounds, not completed.
  for (std::size_t b = 0; b < sim.width(); ++b) {
    runs[sim.originalLane(b)].rounds = sim.round();
    runs[sim.originalLane(b)].completed = false;
  }
  return runs;
}

std::size_t defaultRoundCap(std::size_t n) {
  // ⌈(1+√2)n − 1⌉ plus slack; the theorem says no adversary can reach it.
  const double ub = std::ceil((1.0 + std::sqrt(2.0)) * static_cast<double>(n));
  return static_cast<std::size_t>(ub) + 16;
}

}  // namespace dynbcast
