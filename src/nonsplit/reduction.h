// The Charron-Bost–Függer–Nowak reduction [1], as executable facts:
// the product of any n−1 rooted trees (with self-loops) on n nodes is a
// nonsplit graph. This is the bridge that turned [9]'s O(log log n)
// nonsplit bound into the pre-paper O(n log log n) tree bound (§4).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// Product G_1 ∘ G_2 ∘ … of the trees' communication graphs.
[[nodiscard]] BitMatrix productOfTrees(const std::vector<RootedTree>& trees);

/// Checks the reduction's statement on a concrete sequence: true when the
/// product of the given trees is nonsplit. By [1] this always holds when
/// trees.size() >= n−1; property tests exercise exactly that.
[[nodiscard]] bool treeProductIsNonsplit(const std::vector<RootedTree>& trees);

/// The smallest prefix length L such that G_1 ∘ … ∘ G_L is nonsplit, or
/// trees.size()+1 when no prefix suffices. By [1], L ≤ n−1 always; the
/// benches report how much earlier random sequences get there.
[[nodiscard]] std::size_t nonsplitPrefixLength(
    const std::vector<RootedTree>& trees);

}  // namespace dynbcast
