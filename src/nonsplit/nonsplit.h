// Nonsplit-graph substrate (related work §4).
//
// A directed graph is *nonsplit* when every pair of nodes has a common
// in-neighbor. Charron-Bost & Schiper [2] showed broadcast under
// nonsplit adversaries finishes within ⌈log₂ n⌉ rounds; Függer, Nowak &
// Winkler [9] sharpened the radius to O(log log n). Together with the
// reduction of [1] (n−1 rooted-tree rounds simulate one nonsplit round,
// see reduction.h) this gave the pre-paper O(n log log n) bound that
// Theorem 3.1 replaces.
//
// This module generates nonsplit adversary moves and measures broadcast
// under them, so the benches can exhibit the logarithmic regime next to
// the linear tree regime.
#pragma once

#include <cstdint>
#include <functional>

#include "src/graph/bitmatrix.h"
#include "src/graph/properties.h"
#include "src/support/rng.h"

namespace dynbcast {

/// Random reflexive nonsplit graph: starts from `extraEdges` random edges
/// plus all self-loops, then repairs every pair lacking a common
/// in-neighbor by giving a random node edges to both. Nondegenerate (no
/// universal hub is forced) and nonsplit by construction.
[[nodiscard]] BitMatrix randomNonsplitGraph(std::size_t n,
                                            std::size_t extraEdges, Rng& rng);

/// Adversarially skewed nonsplit graph: identity plus, for every pair, a
/// common in-neighbor chosen to be a *low-index* node with bias, keeping
/// information flow bottlenecked through few nodes.
[[nodiscard]] BitMatrix skewedNonsplitGraph(std::size_t n, Rng& rng);

/// Density-parameterized variant of randomNonsplitGraph: every ordered
/// pair (x, y), x ≠ y, gets an edge independently with probability p
/// (plus all self-loops) before the same nonsplit repair pass. p = 0 is
/// the sparsest legal regime (repair edges only); p = 1 is the complete
/// graph. Requires 0 ≤ p ≤ 1.
[[nodiscard]] BitMatrix bernoulliNonsplitGraph(std::size_t n, double p,
                                               Rng& rng);

/// Runs broadcast where every round's graph is produced by `makeGraph`
/// (must be reflexive; nonsplitness is asserted). Returns rounds until
/// some node is heard by everyone, or maxRounds when incomplete.
struct NonsplitRun {
  std::size_t rounds = 0;
  bool completed = false;
};

[[nodiscard]] NonsplitRun runNonsplitBroadcast(
    std::size_t n, const std::function<BitMatrix(Rng&)>& makeGraph,
    std::size_t maxRounds, Rng& rng);

}  // namespace dynbcast
