#include "src/nonsplit/nonsplit.h"

#include "src/sim/broadcast_sim.h"
#include "src/support/assert.h"

namespace dynbcast {

namespace {

/// Repair pass shared by the random generators: give every
/// common-in-neighbor-less pair a random one.
void repairNonsplit(BitMatrix& g, std::size_t n, Rng& rng) {
  const BitMatrix t0 = g.transposed();
  std::vector<DynBitset> inSets;
  inSets.reserve(n);
  for (std::size_t y = 0; y < n; ++y) inSets.push_back(t0.row(y));
  for (std::size_t y1 = 0; y1 < n; ++y1) {
    for (std::size_t y2 = y1 + 1; y2 < n; ++y2) {
      if (!inSets[y1].intersects(inSets[y2])) {
        const std::size_t z = rng.uniform(n);
        g.set(z, y1);
        g.set(z, y2);
        inSets[y1].set(z);
        inSets[y2].set(z);
      }
    }
  }
}

}  // namespace

BitMatrix randomNonsplitGraph(std::size_t n, std::size_t extraEdges,
                              Rng& rng) {
  DYNBCAST_ASSERT(n > 0);
  BitMatrix g = BitMatrix::identity(n);
  for (std::size_t e = 0; e < extraEdges; ++e) {
    g.set(rng.uniform(n), rng.uniform(n));
  }
  repairNonsplit(g, n, rng);
  DYNBCAST_ASSERT(isNonsplit(g));
  return g;
}

BitMatrix bernoulliNonsplitGraph(std::size_t n, double p, Rng& rng) {
  DYNBCAST_ASSERT(n > 0);
  DYNBCAST_ASSERT_MSG(p >= 0.0 && p <= 1.0, "p must be a probability");
  BitMatrix g = BitMatrix::identity(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (x != y && rng.chance(p)) g.set(x, y);
    }
  }
  repairNonsplit(g, n, rng);
  DYNBCAST_ASSERT(isNonsplit(g));
  return g;
}

BitMatrix skewedNonsplitGraph(std::size_t n, Rng& rng) {
  DYNBCAST_ASSERT(n > 0);
  BitMatrix g = BitMatrix::identity(n);
  // Every pair gets a common in-neighbor biased towards low indices, so a
  // few "dispatcher" nodes do most of the informing — the slow nonsplit
  // regime (information still spreads in O(log n), per [2]).
  const std::size_t span = std::max<std::size_t>(1, n / 8);
  for (std::size_t y1 = 0; y1 < n; ++y1) {
    for (std::size_t y2 = y1 + 1; y2 < n; ++y2) {
      const std::size_t z = std::min(rng.uniform(span), rng.uniform(span));
      g.set(z, y1);
      g.set(z, y2);
    }
  }
  DYNBCAST_ASSERT(isNonsplit(g));
  return g;
}

NonsplitRun runNonsplitBroadcast(
    std::size_t n, const std::function<BitMatrix(Rng&)>& makeGraph,
    std::size_t maxRounds, Rng& rng) {
  BroadcastSim sim(n);
  NonsplitRun run;
  if (sim.broadcastDone()) {
    run.completed = true;
    return run;
  }
  while (sim.round() < maxRounds) {
    const BitMatrix g = makeGraph(rng);
    DYNBCAST_ASSERT_MSG(isNonsplit(g), "adversary move must be nonsplit");
    sim.applyGraph(g);
    if (sim.broadcastDone()) {
      run.rounds = sim.round();
      run.completed = true;
      return run;
    }
  }
  run.rounds = sim.round();
  return run;
}

}  // namespace dynbcast
