#include "src/nonsplit/reduction.h"

#include "src/graph/properties.h"
#include "src/support/assert.h"

namespace dynbcast {

BitMatrix productOfTrees(const std::vector<RootedTree>& trees) {
  DYNBCAST_ASSERT(!trees.empty());
  BitMatrix product = trees.front().toMatrix();
  for (std::size_t i = 1; i < trees.size(); ++i) {
    DYNBCAST_ASSERT(trees[i].size() == product.dim());
    product = product.product(trees[i].toMatrix());
  }
  return product;
}

bool treeProductIsNonsplit(const std::vector<RootedTree>& trees) {
  return isNonsplit(productOfTrees(trees));
}

std::size_t nonsplitPrefixLength(const std::vector<RootedTree>& trees) {
  DYNBCAST_ASSERT(!trees.empty());
  BitMatrix product = trees.front().toMatrix();
  if (isNonsplit(product)) return 1;
  for (std::size_t i = 1; i < trees.size(); ++i) {
    DYNBCAST_ASSERT(trees[i].size() == product.dim());
    product = product.product(trees[i].toMatrix());
    if (isNonsplit(product)) return i + 1;
  }
  return trees.size() + 1;
}

}  // namespace dynbcast
