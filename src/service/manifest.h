// The run manifest: a job's durable checkpoint log.
//
// One manifest file per job, append-only after its header:
//
//   DYNBCAST-MANIFEST/1
//   request <canonical request string>     (protocol.h canonical form)
//   tasks <T>
//   done <position> <rounds> <0|1>         (one line per finished task)
//
// The header is written once (durably) when the job is planned; every
// completed task appends one fsynced `done` record via
// appendLineDurable, so "in the manifest" and "survives kill -9" are the
// same property. Records may arrive from several worker processes —
// O_APPEND plus the exclusive flock keeps lines whole — and in any
// order, since a task's position fully determines where its row lands.
//
// Loading tolerates exactly the damage an interrupted writer can cause:
// a torn final line (skipped — that task simply re-runs) and duplicate
// records (identical by determinism; the first wins). Anything else —
// wrong version, missing header, out-of-range position — is corruption
// and throws.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dynbcast {

inline constexpr char kManifestVersion[] = "DYNBCAST-MANIFEST/1";

/// One finished task: its grid position and what it computed. `rounds`
/// and `completed` mirror SweepRow's fields (for beam tasks, rounds is
/// the verified witness round count, 0 when none found or skipped).
struct TaskRecord {
  std::size_t position = 0;
  std::size_t rounds = 0;
  bool completed = false;
};

/// A manifest parsed back into memory: the job identity plus per-position
/// completion state.
struct ManifestState {
  std::string canonicalRequest;
  std::size_t taskCount = 0;
  /// Indexed by position; nullopt = not finished yet.
  std::vector<std::optional<TaskRecord>> records;
  std::size_t doneCount = 0;

  [[nodiscard]] bool complete() const noexcept {
    return doneCount == taskCount;
  }

  /// Unfinished positions within [begin, min(end, taskCount)), ascending.
  [[nodiscard]] std::vector<std::size_t> pending(std::size_t begin,
                                                 std::size_t end) const;
};

/// Writes (or truncates to) a fresh manifest header, durably.
void initManifest(const std::string& path,
                  const std::string& canonicalRequest,
                  std::size_t taskCount);

/// Loads and parses a manifest; nullopt when the file does not exist.
/// Throws std::runtime_error on a corrupt or version-mismatched header.
[[nodiscard]] std::optional<ManifestState> loadManifest(
    const std::string& path);

/// Appends one task's completion record, durably (fsynced before
/// returning). Safe from concurrent processes.
void appendTaskRecord(const std::string& path, const TaskRecord& record);

}  // namespace dynbcast
