#include "src/service/cache.h"

#include <utility>

#include "src/service/protocol.h"
#include "src/support/file_lock.h"

namespace dynbcast {

namespace {

/// Parses one bucket line: `<hash16> <rounds> <0|1> <key...>`. Returns
/// false on damage (torn tail line) — the entry is simply not found and
/// gets recomputed.
[[nodiscard]] bool parseBucketLine(const std::string& line,
                                   std::string* hashHex, std::size_t* rounds,
                                   bool* completed, std::string* key) {
  const std::size_t s1 = line.find(' ');
  if (s1 == std::string::npos) return false;
  const std::size_t s2 = line.find(' ', s1 + 1);
  if (s2 == std::string::npos) return false;
  const std::size_t s3 = line.find(' ', s2 + 1);
  if (s3 == std::string::npos) return false;
  *hashHex = line.substr(0, s1);
  const std::string roundsText = line.substr(s1 + 1, s2 - s1 - 1);
  const std::string completedText = line.substr(s2 + 1, s3 - s2 - 1);
  if (roundsText.empty() ||
      roundsText.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  if (completedText != "0" && completedText != "1") return false;
  *rounds = static_cast<std::size_t>(std::stoull(roundsText));
  *completed = completedText == "1";
  *key = line.substr(s3 + 1);
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string directory, std::size_t memoryCapacity)
    : directory_(std::move(directory)), capacity_(memoryCapacity) {
  if (enabled()) makeDirectories(directory_);
}

std::string ResultCache::bucketPath(std::uint64_t keyHash) const {
  static const char kDigits[] = "0123456789abcdef";
  std::string name = "bucket-00.cache";
  name[7] = kDigits[(keyHash >> 4) & 0xf];
  name[8] = kDigits[keyHash & 0xf];
  return directory_ + '/' + name;
}

void ResultCache::remember(const std::string& key, const Value& value) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.front().value = value;
    return;
  }
  lru_.push_front({key, value});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::optional<ResultCache::Value> ResultCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  const std::uint64_t keyHash = fnv1a64(key);
  {
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.front().value;
    }
  }
  // LRU miss: scan the key's bucket file (shared-locked whole-file
  // read, so a concurrent appender can't hand us half a line except as
  // the torn tail parseBucketLine already rejects).
  const std::optional<std::string> bucket =
      readFileIfExists(bucketPath(keyHash));
  if (!bucket.has_value()) return std::nullopt;
  const std::string wantHash = hex64(keyHash);
  std::size_t lineStart = 0;
  while (lineStart < bucket->size()) {
    std::size_t lineEnd = bucket->find('\n', lineStart);
    if (lineEnd == std::string::npos) lineEnd = bucket->size();
    const std::string line = bucket->substr(lineStart, lineEnd - lineStart);
    lineStart = lineEnd + 1;
    std::string hashHex;
    std::string entryKey;
    Value value;
    if (!parseBucketLine(line, &hashHex, &value.rounds, &value.completed,
                         &entryKey)) {
      continue;
    }
    if (hashHex != wantHash || entryKey != key) continue;
    MutexLock lock(mutex_);
    remember(key, value);
    return value;
  }
  return std::nullopt;
}

void ResultCache::put(const std::string& key, const Value& value) {
  if (!enabled()) return;
  const std::uint64_t keyHash = fnv1a64(key);
  appendLineDurable(bucketPath(keyHash),
                    hex64(keyHash) + ' ' + std::to_string(value.rounds) +
                        ' ' + (value.completed ? "1" : "0") + ' ' + key);
  MutexLock lock(mutex_);
  remember(key, value);
}

}  // namespace dynbcast
