// Service job planning: a request, expanded into addressable tasks.
//
// A ServiceRequest expands into taskCount() independent tasks, indexed
// by position:
//
//   positions [0, rowCount)              scenario rows — exactly
//                                        src/engine/task_plan.h's grid
//   positions [rowCount, taskCount)      beam-witness tasks, one per
//                                        size (thm31 requests only)
//
// Every task is a pure function of (request, position): what it computes
// (executeServiceTask), its result-cache identity (serviceTaskKey), and
// where its output lands (assembleServiceRows) are all derivable by any
// process independently. That is the whole distribution story — a
// manifest records positions, workers execute arbitrary subsets, and the
// merged results are byte-identical to a single-process run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/task_plan.h"
#include "src/service/protocol.h"

namespace dynbcast {

/// The task grid of one request.
struct ServiceJobPlan {
  std::size_t rowCount = 0;
  /// One beam-witness task per size for thm31 requests, else 0. Sizes
  /// above beamMaxN still get a (trivial) task so the manifest covers
  /// every output cell uniformly.
  std::size_t beamCount = 0;

  [[nodiscard]] std::size_t taskCount() const noexcept {
    return rowCount + beamCount;
  }
};

[[nodiscard]] ServiceJobPlan planServiceJob(const ServiceRequest& request);

/// What one task computed. For rows this mirrors SweepRow's
/// rounds/completed; for beam tasks, rounds is the verified witness
/// round count (0 = no witness: the size is above beamMaxN or
/// verification failed) and completed is always true.
struct ServiceTaskResult {
  std::size_t rounds = 0;
  bool completed = false;
};

/// The task's result-cache key: every input that determines its output,
/// spelled canonically — and nothing that doesn't, so overlapping
/// requests share cache cells. Row keys resolve the effective backend
/// (dense below the sparse/dense mirror threshold, where rows are
/// backend-invariant) rather than echoing the request's auto/dense/
/// sparse choice. Beam keys carry a searched=0|1 flag so a size skipped
/// by one request's beamMaxN can never satisfy another request that
/// actually searches it.
[[nodiscard]] std::string serviceTaskKey(const ServiceRequest& request,
                                         std::size_t position);

/// Executes task `position` on the calling thread. The scenario must
/// already satisfy validateScenario().
[[nodiscard]] ServiceTaskResult executeServiceTask(
    const ServiceRequest& request, std::size_t position);

/// Reconstructs full SweepRows from the row-range results (indexed by
/// position, size rowCount) — byte-identical to runScenario()'s rows,
/// minus per-round history, which the service never records.
[[nodiscard]] std::vector<SweepRow> assembleServiceRows(
    const ScenarioSpec& spec,
    const std::vector<ServiceTaskResult>& rowResults);

}  // namespace dynbcast
