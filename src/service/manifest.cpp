#include "src/service/manifest.h"

#include <stdexcept>

#include "src/support/file_lock.h"

namespace dynbcast {

namespace {

[[nodiscard]] bool parseSizeT(const std::string& token, std::size_t* out) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = static_cast<std::size_t>(std::stoull(token));
  return true;
}

/// Splits on '\n'; a missing trailing newline leaves the torn tail as
/// the final element so the caller can treat it as damage.
[[nodiscard]] std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

[[nodiscard]] std::vector<std::string> splitWords(const std::string& line) {
  std::vector<std::string> words;
  std::string current;
  for (const char c : line) {
    if (c == ' ') {
      if (!current.empty()) words.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

}  // namespace

std::vector<std::size_t> ManifestState::pending(std::size_t begin,
                                                std::size_t end) const {
  std::vector<std::size_t> positions;
  const std::size_t stop = end < taskCount ? end : taskCount;
  for (std::size_t p = begin; p < stop; ++p) {
    if (!records[p].has_value()) positions.push_back(p);
  }
  return positions;
}

void initManifest(const std::string& path,
                  const std::string& canonicalRequest,
                  std::size_t taskCount) {
  std::string header;
  header += kManifestVersion;
  header += "\nrequest ";
  header += canonicalRequest;
  header += "\ntasks ";
  header += std::to_string(taskCount);
  header += '\n';
  writeFileDurable(path, header);
}

std::optional<ManifestState> loadManifest(const std::string& path) {
  const std::optional<std::string> content = readFileIfExists(path);
  if (!content.has_value()) return std::nullopt;
  const std::vector<std::string> lines = splitLines(*content);
  if (lines.size() < 3 || lines[0] != kManifestVersion ||
      lines[1].rfind("request ", 0) != 0 ||
      lines[2].rfind("tasks ", 0) != 0) {
    throw std::runtime_error("manifest " + path +
                             ": corrupt or unsupported header");
  }
  ManifestState state;
  state.canonicalRequest = lines[1].substr(8);
  if (!parseSizeT(lines[2].substr(6), &state.taskCount)) {
    throw std::runtime_error("manifest " + path + ": bad task count '" +
                             lines[2] + "'");
  }
  state.records.resize(state.taskCount);
  for (std::size_t i = 3; i < lines.size(); ++i) {
    // Damage tolerance: a writer killed mid-append leaves one torn tail
    // line. Skip anything that does not parse as a full record — the
    // task it would have named simply re-runs on resume.
    const std::vector<std::string> words = splitWords(lines[i]);
    TaskRecord record;
    std::size_t completed = 0;
    if (words.size() != 4 || words[0] != "done" ||
        !parseSizeT(words[1], &record.position) ||
        !parseSizeT(words[2], &record.rounds) ||
        !parseSizeT(words[3], &completed) || completed > 1 ||
        record.position >= state.taskCount) {
      continue;
    }
    record.completed = completed == 1;
    if (state.records[record.position].has_value()) continue;
    state.records[record.position] = record;
    state.doneCount += 1;
  }
  return state;
}

void appendTaskRecord(const std::string& path, const TaskRecord& record) {
  appendLineDurable(path, "done " + std::to_string(record.position) + ' ' +
                              std::to_string(record.rounds) + ' ' +
                              (record.completed ? "1" : "0"));
}

}  // namespace dynbcast
