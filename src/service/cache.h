// The spec-keyed result cache: on-disk bucket files with an in-memory
// LRU in front.
//
// A task's result is a pure function of its cache key — the canonical
// spec context plus the position-derived seed (see serviceTaskKey in
// src/service/job.h) — so results can be reused across requests,
// restarts, and processes. Storage is deliberately primitive:
//
//   <dir>/bucket-<XX>.cache       XX = low byte of the key's FNV-1a hash
//
// where each bucket is an append-only line file,
//
//   <key-hash-hex> <rounds> <0|1> <key...>
//
// appended durably (flock + fsync, src/support/file_lock.h) so workers
// in different processes can write concurrently. Keys may contain
// spaces, hence last-field position; the leading hash makes the scan
// cheap and the full key comparison makes it exact. Duplicate lines are
// harmless (determinism: same key, same value).
//
// The LRU layer exists to avoid re-reading bucket files: a get() miss
// scans one bucket from disk, a hit costs a hash lookup. Entries are
// tiny (key string + two integers), so the default capacity is generous.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace dynbcast {

class ResultCache {
 public:
  struct Value {
    std::size_t rounds = 0;
    bool completed = false;
  };

  /// `directory` is created if missing; an EMPTY directory string
  /// disables the cache entirely (get always misses, put is a no-op) —
  /// the manifest-only execution mode.
  explicit ResultCache(std::string directory,
                       std::size_t memoryCapacity = 65536);

  [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }

  /// Looks the key up in the LRU, then in its bucket file. Thread-safe.
  [[nodiscard]] std::optional<Value> get(const std::string& key);

  /// Durably appends the entry to its bucket file and remembers it in
  /// the LRU. Thread- and multi-process-safe.
  void put(const std::string& key, const Value& value);

 private:
  struct Entry {
    std::string key;
    Value value;
  };

  [[nodiscard]] std::string bucketPath(std::uint64_t keyHash) const;
  void remember(const std::string& key, const Value& value)
      REQUIRES(mutex_);

  std::string directory_;
  std::size_t capacity_;
  Mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mutex_);
};

}  // namespace dynbcast
