// The dynbcast service wire protocol: versioned, newline-delimited text.
//
// `dynbcast serve` accepts experiment requests over a unix-domain socket
// (src/support/socket.h). A request is a ScenarioSpec plus the beam
// witness knobs `dynbcast sweep` exposes, flattened into `key=value`
// lines — dead simple on purpose: every frame is one readable line, a
// session can be replayed with `nc -U`, and versioning is the literal
// first token of the conversation.
//
// Request (client → server):
//
//   DYNBCAST/1 SUBMIT
//   dynamics=rooted-tree
//   sizes=4,8,16,32
//   seed=1
//   ...                      (one canonical key=value per line, any order)
//   <blank line>
//
// Response (server → client), streamed as execution progresses:
//
//   DYNBCAST/1 ACCEPTED job=<16-hex> tasks=<T>
//   PROGRESS done=<d> total=<T>       (repeated as checkpoints land)
//   TASK <position> <rounds> <0|1>    (one per task, in position order)
//   STATS tasks=<T> resumed=<R> cache-hits=<H> executed=<E>
//   DONE
//
// or `ERROR <message>` at any point, after which the server closes the
// connection. The client reconstructs full rows locally: row identity is
// a pure function of (request, position) — see src/engine/task_plan.h —
// so the wire only ever carries what the server actually computed.
//
// The CANONICAL form of a request (sorted keys, canonicalized spec
// strings, resolved adversary defaults) doubles as the job identity: its
// hash names the manifest, so resubmitting an equivalent request — even
// spelled differently — resumes or reuses the same job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/scenario.h"

namespace dynbcast {

inline constexpr char kServiceProtocol[] = "DYNBCAST/1";

/// One experiment request: the scenario, plus the beam-witness knobs
/// that apply when the request is a Theorem 3.1 sweep (broadcast over
/// unrestricted rooted trees — exactly when `dynbcast sweep` would run
/// its beam witness pass).
struct ServiceRequest {
  ScenarioSpec scenario;
  /// Beam witness search runs only for sizes n <= beamMaxN (matches the
  /// sweep subcommand's --beam-maxn; larger sizes report no witness).
  std::size_t beamMaxN = 32;
  /// Beam width for the witness search (--beam-width).
  std::size_t beamWidth = 256;
};

/// True when the request runs the sweep subcommand's beam-witness pass:
/// objective=broadcast over the default rooted-tree dynamics.
[[nodiscard]] bool requestWantsBeamWitnesses(const ServiceRequest& request);

/// The request as canonical `key=value` lines, sorted by key: dynamics
/// and adversary specs in registry-canonical form, adversary defaults
/// resolved, beam knobs present only when the request has a beam pass.
/// Throws std::invalid_argument on unknown dynamics/adversary names.
[[nodiscard]] std::vector<std::string> encodeRequest(
    const ServiceRequest& request);

/// Parses request lines (the part between SUBMIT and the blank line).
/// Purely structural — unknown keys and malformed values throw
/// std::invalid_argument (with a did-you-mean for near-miss keys), but
/// the scenario itself is NOT validated; callers run validateScenario()
/// for that, so spec errors surface with the registry's messages.
[[nodiscard]] ServiceRequest decodeRequest(
    const std::vector<std::string>& lines);

/// encodeRequest joined with single spaces: one line that round-trips
/// through decodeCanonicalRequest. No value in the grammar may contain a
/// space or newline, which is what makes this safe.
[[nodiscard]] std::string canonicalRequestString(
    const ServiceRequest& request);

/// Inverse of canonicalRequestString (used by workers to reconstruct
/// the request from a manifest header).
[[nodiscard]] ServiceRequest decodeCanonicalRequest(const std::string& text);

/// Job identity: 16 hex digits of the canonical request string's FNV-1a
/// hash. Names the manifest file; the manifest stores the full canonical
/// string so a (vanishingly unlikely) collision is detected, not acted
/// on.
[[nodiscard]] std::string requestJobId(const ServiceRequest& request);

/// FNV-1a over bytes — the service's stable string hash (cache buckets,
/// job ids). Stability matters: these values land in on-disk filenames.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text);

/// Fixed-width lowercase hex (16 digits) for fnv1a64 values.
[[nodiscard]] std::string hex64(std::uint64_t value);

}  // namespace dynbcast
