// The dynbcast experiment server.
//
// `dynbcast serve` binds a unix-domain socket and turns protocol.h
// requests into checkpointed, cached, optionally multi-process
// execution:
//
//   request → canonical form → job id → manifest (resume if one is
//   already underway) → cache pre-pass (finished cells cost nothing) →
//   execution of the remaining delta → streamed results.
//
// Sharding: with workers=N the server spawns N copies of its own binary
// as `dynbcast work --manifest=...` processes, each owning a disjoint
// position range. Worker death is not an error — whatever a dead worker
// failed to checkpoint is simply still pending, so the server reloads
// the manifest and spawns the next wave until the job drains (a wave
// that makes zero progress falls back to in-process execution rather
// than spinning). With workers=0 the server executes in-process through
// the same worker loop.
//
// One request is served at a time; the queue is the socket backlog.
// That is deliberate: the unit of parallelism here is the task, not the
// connection, and serialized jobs keep the manifest/cache story simple
// to reason about.
#pragma once

#include <cstdint>
#include <string>

namespace dynbcast {

struct ServerOptions {
  /// Unix-domain socket path to listen on.
  std::string socketPath;
  /// Manifests and the result cache live here (created if missing).
  std::string stateDir;
  /// Worker processes per job; 0 = execute in-process.
  std::size_t workers = 0;
  /// --jobs handed to each worker (threads within the process).
  std::size_t jobsPerWorker = 1;
  /// Exit after serving this many connections; 0 = serve forever.
  std::size_t maxRequests = 0;
  /// Binary to exec for worker processes (the dynbcast binary itself);
  /// required when workers > 0.
  std::string workerBinary;
  /// Fault injection for resume tests: first-wave workers get
  /// --max-tasks=K, so they exit after K tasks as a killed worker
  /// would; later waves run unrestricted. 0 = off.
  std::size_t workerMaxTasks = 0;
};

/// Runs the accept loop. Returns 0 on orderly exit (maxRequests
/// served); throws std::runtime_error on socket/state-dir failures.
[[nodiscard]] int runServer(const ServerOptions& options);

}  // namespace dynbcast
