#include "src/service/worker.h"

#include <atomic>
#include <stdexcept>

#include "src/engine/experiment_engine.h"
#include "src/service/cache.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/protocol.h"
#include "src/support/assert.h"

namespace dynbcast {

WorkerReport runManifestWorker(const WorkerOptions& options) {
  const std::optional<ManifestState> manifest =
      loadManifest(options.manifestPath);
  if (!manifest.has_value()) {
    throw std::runtime_error("worker: no manifest at " +
                             options.manifestPath);
  }
  const ServiceRequest request =
      decodeCanonicalRequest(manifest->canonicalRequest);
  const ServiceJobPlan plan = planServiceJob(request);
  if (plan.taskCount() != manifest->taskCount) {
    throw std::runtime_error(
        "worker: manifest " + options.manifestPath + " declares " +
        std::to_string(manifest->taskCount) + " tasks but its request " +
        "plans to " + std::to_string(plan.taskCount()));
  }

  WorkerReport report;
  const std::size_t rangeEnd = options.rangeEnd < manifest->taskCount
                                   ? options.rangeEnd
                                   : manifest->taskCount;
  const std::size_t rangeBegin =
      options.rangeBegin < rangeEnd ? options.rangeBegin : rangeEnd;
  report.assigned = rangeEnd - rangeBegin;

  std::vector<std::size_t> pending =
      manifest->pending(rangeBegin, rangeEnd);
  report.alreadyDone = report.assigned - pending.size();
  if (pending.size() > options.maxTasks) {
    report.remaining = pending.size() - options.maxTasks;
    pending.resize(options.maxTasks);
  }
  if (pending.empty()) return report;

  ResultCache cache(options.cacheDir);
  std::atomic<std::size_t> cacheHits{0};
  std::atomic<std::size_t> executed{0};

  EngineConfig config;
  config.jobs = options.jobs;
  ExperimentEngine engine(config);
  // The seeds map() derives are unused — every task derives its own
  // seeds from (request, position), which is what makes re-execution by
  // any process byte-identical.
  (void)engine.map<char>(
      pending.size(), 0, [&](std::size_t index, std::uint64_t) -> char {
        const std::size_t position = pending[index];
        const std::string key = serviceTaskKey(request, position);
        ServiceTaskResult result;
        if (const auto hit = cache.get(key); hit.has_value()) {
          result.rounds = hit->rounds;
          result.completed = hit->completed;
          cacheHits.fetch_add(1, std::memory_order_relaxed);
        } else {
          result = executeServiceTask(request, position);
          cache.put(key, {result.rounds, result.completed});
          executed.fetch_add(1, std::memory_order_relaxed);
        }
        // The durability contract: the task is "done" once this record
        // is fsynced — and only then.
        appendTaskRecord(options.manifestPath,
                         {position, result.rounds, result.completed});
        return 0;
      });

  report.cacheHits = cacheHits.load(std::memory_order_relaxed);
  report.executed = executed.load(std::memory_order_relaxed);
  DYNBCAST_ASSERT(report.cacheHits + report.executed == pending.size());
  return report;
}

}  // namespace dynbcast
