#include "src/service/job.h"

#include "src/adversary/beam.h"
#include "src/dynamics/registry.h"
#include "src/support/assert.h"

namespace dynbcast {

namespace {

/// The backend that actually runs a row of size n, as a cache-key
/// token. Below the mirror threshold sparse and dense produce identical
/// rows, so everything normalizes to "dense" and requests differing
/// only in backend choice share cache cells. Above it, the resolution
/// mirrors runScenarioRow's: explicit sparse, or auto over a
/// sparse-capable model — looked up on the MEMBER model (which under
/// the legacy generator-list alias differs from the dynamics entry).
/// Registry sparseCapable and the constructed model's
/// supportsSparseRounds agree; validateScenario enforces the former
/// wherever the latter could run.
[[nodiscard]] std::string rowBackendToken(const ScenarioSpec& spec,
                                          const DynamicsInfo& entry,
                                          const std::string& memberSpec,
                                          std::size_t n) {
  if (entry.mode == DynamicsMode::kAdversaryTrees) return "dense";
  if (n <= kAutoSparseThreshold) return "dense";
  const DynamicsInfo& memberEntry = DynamicsRegistry::instance().info(
      DynamicsSpec::parse(memberSpec).name);
  const bool sparse = spec.backend == BackendChoice::kSparse ||
                      (spec.backend == BackendChoice::kAuto &&
                       memberEntry.sparseCapable && !spec.recordHistory);
  return sparse ? "sparse" : "dense";
}

[[nodiscard]] BeamConfig requestBeamConfig(const ServiceRequest& request) {
  // The sweep subcommand's fixed search knobs; width is the one the
  // request can vary. Changing the fixed values changes witness rounds,
  // so they are spelled into the cache key below.
  BeamConfig cfg;
  cfg.beamWidth = request.beamWidth;
  cfg.randomMovesPerState = 8;
  cfg.diversityPercent = 40;
  return cfg;
}

}  // namespace

ServiceJobPlan planServiceJob(const ServiceRequest& request) {
  ServiceJobPlan plan;
  plan.rowCount = scenarioRowCount(request.scenario);
  plan.beamCount = requestWantsBeamWitnesses(request)
                       ? request.scenario.sizes.size()
                       : 0;
  return plan;
}

std::string serviceTaskKey(const ServiceRequest& request,
                           std::size_t position) {
  const ScenarioSpec& spec = request.scenario;
  const ServiceJobPlan plan = planServiceJob(request);
  DYNBCAST_ASSERT(position < plan.taskCount());

  if (position >= plan.rowCount) {
    const std::size_t sizeIndex = position - plan.rowCount;
    const std::size_t n = spec.sizes[sizeIndex];
    const bool searched = n <= request.beamMaxN;
    return "beam/1 n=" + std::to_string(n) + " seed=" +
           std::to_string(scenarioBeamSeed(spec.masterSeed, sizeIndex)) +
           " width=" + std::to_string(request.beamWidth) +
           " moves=8 div=40 searched=" + (searched ? "1" : "0");
  }

  const ScenarioRowPlan row = planScenarioRow(spec, position);
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);
  return "row/1 obj=" + objectiveName(spec.objective) +
         " dyn=" + dynamics.toString() + " cap=" +
         std::to_string(spec.roundCap) + " backend=" +
         rowBackendToken(spec, entry, row.memberSpec, row.n) +
         " member=" + row.memberSpec +
         " n=" + std::to_string(row.n) + " seed=" +
         std::to_string(row.instanceSeed) + " mpos=" +
         std::to_string(row.memberIndex);
}

ServiceTaskResult executeServiceTask(const ServiceRequest& request,
                                     std::size_t position) {
  const ServiceJobPlan plan = planServiceJob(request);
  DYNBCAST_ASSERT(position < plan.taskCount());

  if (position >= plan.rowCount) {
    const std::size_t sizeIndex = position - plan.rowCount;
    const std::size_t n = request.scenario.sizes[sizeIndex];
    ServiceTaskResult result;
    result.completed = true;
    if (n > request.beamMaxN) return result;  // witness pass skips it
    const BeamResult witness = beamSearchWitness(
        n, scenarioBeamSeed(request.scenario.masterSeed, sizeIndex),
        requestBeamConfig(request));
    result.rounds = verifyWitness(n, witness.witness) == witness.rounds
                        ? witness.rounds
                        : 0;
    return result;
  }

  const SweepRow row = runScenarioRow(request.scenario, position);
  return {row.rounds, row.completed};
}

std::vector<SweepRow> assembleServiceRows(
    const ScenarioSpec& spec,
    const std::vector<ServiceTaskResult>& rowResults) {
  DYNBCAST_ASSERT(rowResults.size() == scenarioRowCount(spec));
  std::vector<SweepRow> rows;
  rows.reserve(rowResults.size());
  for (std::size_t position = 0; position < rowResults.size(); ++position) {
    const ScenarioRowPlan plan = planScenarioRow(spec, position);
    SweepRow row;
    row.n = plan.n;
    row.seedIndex = plan.seedIndex;
    row.instanceSeed = plan.instanceSeed;
    // Member naming: membersFromSpecs names members by the canonical
    // spec string, and graph-model rows carry the model's canonical
    // spec, so the plan's memberSpec IS the row's member name.
    row.member = plan.memberSpec;
    row.rounds = rowResults[position].rounds;
    row.completed = rowResults[position].completed;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dynbcast
