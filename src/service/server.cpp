#include "src/service/server.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/service/cache.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/protocol.h"
#include "src/service/worker.h"
#include "src/support/file_lock.h"
#include "src/support/socket.h"

namespace dynbcast {

namespace {

struct WorkerProcess {
  pid_t pid = -1;
};

/// fork+exec one `dynbcast work` process over [begin, end).
[[nodiscard]] WorkerProcess spawnWorker(const ServerOptions& options,
                                        const std::string& manifestPath,
                                        std::size_t begin, std::size_t end,
                                        std::size_t maxTasks) {
  std::vector<std::string> args;
  args.push_back(options.workerBinary);
  args.push_back("work");
  args.push_back("--manifest=" + manifestPath);
  args.push_back("--cache=" + options.stateDir + "/cache");
  args.push_back("--jobs=" + std::to_string(options.jobsPerWorker));
  args.push_back("--range=" + std::to_string(begin) + ":" +
                 std::to_string(end));
  if (maxTasks != 0) {
    args.push_back("--max-tasks=" + std::to_string(maxTasks));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Exec failure in the child: nothing sane to do but exit loudly;
    // the parent sees a nonzero status and treats the range as pending.
    ::_exit(127);
  }
  return WorkerProcess{pid};
}

void reapWorkers(const std::vector<WorkerProcess>& workers) {
  for (const WorkerProcess& worker : workers) {
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0) {
      if (errno != EINTR) break;
    }
    // Exit status is advisory only — the manifest is the truth about
    // what got done, so a crashed worker needs no special handling.
  }
}

/// Splits `pending` into up to `shards` contiguous groups and spawns one
/// worker per group. Groups cover disjoint position ranges because the
/// pending list is ascending.
void runWorkerWave(const ServerOptions& options,
                   const std::string& manifestPath,
                   const std::vector<std::size_t>& pending,
                   std::size_t maxTasks) {
  const std::size_t shards =
      options.workers < pending.size() ? options.workers : pending.size();
  std::vector<WorkerProcess> workers;
  workers.reserve(shards);
  const std::size_t chunk = (pending.size() + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t lo = s * chunk;
    const std::size_t hi =
        (s + 1) * chunk < pending.size() ? (s + 1) * chunk : pending.size();
    if (lo >= hi) break;
    workers.push_back(spawnWorker(options, manifestPath, pending[lo],
                                  pending[hi - 1] + 1, maxTasks));
  }
  reapWorkers(workers);
}

void handleRequest(const ServerOptions& options, LineChannel& channel,
                   const ServiceRequest& request) {
  validateScenario(request.scenario);
  const std::string canonical = canonicalRequestString(request);
  const std::string jobId = requestJobId(request);
  const std::string manifestPath =
      options.stateDir + "/job-" + jobId + ".manifest";
  const ServiceJobPlan plan = planServiceJob(request);

  std::size_t resumed = 0;
  if (std::optional<ManifestState> existing = loadManifest(manifestPath)) {
    if (existing->canonicalRequest != canonical) {
      channel.writeLine("ERROR job id collision at " + manifestPath +
                        "; remove the stale manifest");
      return;
    }
    if (existing->complete()) {
      // A finished prior submission: its results live in the cache, so
      // start a fresh manifest and let the pre-pass below reclaim them
      // as cache hits (or re-execute if the cache was cleared).
      initManifest(manifestPath, canonical, plan.taskCount());
    } else {
      resumed = existing->doneCount;
    }
  } else {
    initManifest(manifestPath, canonical, plan.taskCount());
  }

  channel.writeLine(std::string(kServiceProtocol) + " ACCEPTED job=" +
                    jobId + " tasks=" + std::to_string(plan.taskCount()));

  // Cache pre-pass: every pending task already in the result cache gets
  // its record appended without executing anything — overlapping
  // requests pay only for their delta.
  ResultCache cache(options.stateDir + "/cache");
  std::size_t cacheHits = 0;
  {
    const std::optional<ManifestState> state = loadManifest(manifestPath);
    for (const std::size_t position :
         state->pending(0, plan.taskCount())) {
      const auto hit = cache.get(serviceTaskKey(request, position));
      if (!hit.has_value()) continue;
      appendTaskRecord(manifestPath,
                       {position, hit->rounds, hit->completed});
      cacheHits += 1;
    }
  }
  channel.writeLine("PROGRESS done=" +
                    std::to_string(resumed + cacheHits) + " total=" +
                    std::to_string(plan.taskCount()));

  // Execute the remainder in waves until the manifest drains. Worker
  // death only means its unfinished range stays pending; a wave with
  // zero progress falls back to in-process execution.
  std::size_t waveMaxTasks = options.workerMaxTasks;
  bool inProcess = options.workers == 0;
  for (;;) {
    const std::optional<ManifestState> state = loadManifest(manifestPath);
    const std::vector<std::size_t> pending =
        state->pending(0, plan.taskCount());
    if (pending.empty()) break;
    if (inProcess) {
      WorkerOptions work;
      work.manifestPath = manifestPath;
      work.cacheDir = options.stateDir + "/cache";
      work.jobs = options.jobsPerWorker;
      (void)runManifestWorker(work);
    } else {
      runWorkerWave(options, manifestPath, pending, waveMaxTasks);
      waveMaxTasks = 0;  // fault injection applies to the first wave only
      const std::optional<ManifestState> after = loadManifest(manifestPath);
      if (after->doneCount == state->doneCount) inProcess = true;
    }
    const std::optional<ManifestState> after = loadManifest(manifestPath);
    channel.writeLine("PROGRESS done=" + std::to_string(after->doneCount) +
                      " total=" + std::to_string(plan.taskCount()));
  }

  const std::optional<ManifestState> finalState = loadManifest(manifestPath);
  if (!finalState->complete()) {
    channel.writeLine("ERROR job did not drain");
    return;
  }
  for (std::size_t position = 0; position < plan.taskCount(); ++position) {
    const TaskRecord& record = *finalState->records[position];
    channel.writeLine("TASK " + std::to_string(position) + ' ' +
                      std::to_string(record.rounds) + ' ' +
                      (record.completed ? "1" : "0"));
  }
  const std::size_t executed = plan.taskCount() - resumed - cacheHits;
  channel.writeLine("STATS tasks=" + std::to_string(plan.taskCount()) +
                    " resumed=" + std::to_string(resumed) + " cache-hits=" +
                    std::to_string(cacheHits) + " executed=" +
                    std::to_string(executed));
  channel.writeLine("DONE");
}

void handleConnection(const ServerOptions& options, OwnedFd fd) {
  LineChannel channel(std::move(fd));
  try {
    std::string line;
    if (!channel.readLine(&line)) return;  // peer connected and left
    if (line != std::string(kServiceProtocol) + " SUBMIT") {
      channel.writeLine(std::string("ERROR expected '") + kServiceProtocol +
                        " SUBMIT', got '" + line + "'");
      return;
    }
    std::vector<std::string> lines;
    while (channel.readLine(&line) && !line.empty()) {
      lines.push_back(line);
    }
    handleRequest(options, channel, decodeRequest(lines));
  } catch (const std::exception& e) {
    // Both user errors (bad specs) and I/O failures surface to the
    // client; the server stays up for the next request.
    try {
      channel.writeLine(std::string("ERROR ") + e.what());
    } catch (const std::exception&) {
      // The peer is gone; nothing left to report to.
    }
  }
}

}  // namespace

int runServer(const ServerOptions& options) {
  if (options.workers > 0 && options.workerBinary.empty()) {
    throw std::runtime_error("serve: workers > 0 requires a worker binary");
  }
  makeDirectories(options.stateDir);
  UnixListener listener(options.socketPath);
  for (std::size_t served = 0;
       options.maxRequests == 0 || served < options.maxRequests; ++served) {
    handleConnection(options, listener.accept());
  }
  return 0;
}

}  // namespace dynbcast
