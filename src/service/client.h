// The submit client: one request over the socket, results reassembled
// into engine-shaped rows.
//
// The wire only carries (position, rounds, completed) — row identity is
// recomputed locally from the request via the task plan, which is also
// the client-side proof that it asked for what it got. The outcome is
// byte-identical to running the scenario directly: same SweepRow fields,
// same order, same per-instance aggregates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/engine/task_plan.h"
#include "src/service/protocol.h"

namespace dynbcast {

struct SubmitOutcome {
  /// Scenario rows, position order — matches runScenario(spec).rows
  /// (minus per-round history, which the service never records).
  std::vector<SweepRow> rows;
  /// Per-instance aggregates over `rows`, matching runScenario().
  std::vector<SweepInstance> instances;
  /// Verified beam-witness rounds per size index (empty unless the
  /// request has a beam pass; 0 = no witness at that size).
  std::vector<std::size_t> beamRounds;
  std::string jobId;
  /// Server-side accounting: total tasks, tasks already checkpointed
  /// when the job was (re)opened, tasks satisfied from the result
  /// cache, tasks actually executed for this submission.
  std::size_t tasks = 0;
  std::size_t resumed = 0;
  std::size_t cacheHits = 0;
  std::size_t executed = 0;
};

/// Submits `request` to the server at `socketPath` and blocks until the
/// job finishes. Server-side PROGRESS lines stream to `progress` when
/// non-null (one line each, prefixed "service: "). Throws
/// std::runtime_error on connection failures, protocol violations, or a
/// server-reported ERROR.
[[nodiscard]] SubmitOutcome submitRequest(const std::string& socketPath,
                                          const ServiceRequest& request,
                                          std::ostream* progress);

}  // namespace dynbcast
