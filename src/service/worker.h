// The manifest worker: executes a job's unfinished tasks and checkpoints
// each one durably.
//
// This is the execution half of `dynbcast serve` — and a standalone
// subcommand (`dynbcast work --manifest=...`), which is exactly how the
// server shards a job across processes: it spawns N copies of the
// binary, each owning a disjoint position range of the same manifest.
// Workers share nothing but the filesystem: the manifest header tells
// them WHAT the job is (the canonical request string round-trips into a
// ServiceRequest), the `done` records tell them what's left, and every
// result is appended durably before the task counts as finished. A
// worker killed at any moment loses at most the tasks it had in flight;
// rerunning any worker over the same range is always safe and lands
// byte-identical records.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dynbcast {

struct WorkerOptions {
  std::string manifestPath;
  /// Result-cache directory; empty disables the cache (manifest-only).
  std::string cacheDir;
  /// Worker threads for task execution (0 = one per core).
  std::size_t jobs = 1;
  /// Position range [rangeBegin, rangeEnd) this worker owns; the end is
  /// clamped to the manifest's task count.
  std::size_t rangeBegin = 0;
  std::size_t rangeEnd = std::numeric_limits<std::size_t>::max();
  /// Fault injection for checkpoint tests: process at most this many
  /// pending tasks, then return — the manifest state is then exactly
  /// what a worker killed at a task boundary leaves behind.
  std::size_t maxTasks = std::numeric_limits<std::size_t>::max();
};

struct WorkerReport {
  /// Tasks in this worker's range.
  std::size_t assigned = 0;
  /// Range tasks already recorded done when the worker started.
  std::size_t alreadyDone = 0;
  /// Pending tasks satisfied from the result cache (no execution).
  std::size_t cacheHits = 0;
  /// Pending tasks actually executed.
  std::size_t executed = 0;
  /// Range tasks still pending on return (nonzero only under maxTasks).
  std::size_t remaining = 0;
};

/// Runs the worker loop to completion (or the maxTasks budget). Throws
/// std::runtime_error on a missing/corrupt manifest and
/// std::invalid_argument when its request no longer decodes.
[[nodiscard]] WorkerReport runManifestWorker(const WorkerOptions& options);

}  // namespace dynbcast
