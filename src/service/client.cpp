#include "src/service/client.h"

#include <ostream>
#include <stdexcept>

#include "src/service/job.h"
#include "src/support/socket.h"

namespace dynbcast {

namespace {

[[nodiscard]] std::vector<std::string> splitWords(const std::string& line) {
  std::vector<std::string> words;
  std::string current;
  for (const char c : line) {
    if (c == ' ') {
      if (!current.empty()) words.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

[[nodiscard]] std::size_t parseCount(const std::string& line,
                                     const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("submit: malformed server line '" + line + "'");
  }
  return static_cast<std::size_t>(std::stoull(token));
}

/// "key=value" → value, enforcing the key.
[[nodiscard]] std::string valueOf(const std::string& line,
                                  const std::string& word,
                                  const std::string& key) {
  if (word.rfind(key + "=", 0) != 0) {
    throw std::runtime_error("submit: malformed server line '" + line + "'");
  }
  return word.substr(key.size() + 1);
}

}  // namespace

SubmitOutcome submitRequest(const std::string& socketPath,
                            const ServiceRequest& request,
                            std::ostream* progress) {
  LineChannel channel(connectUnix(socketPath));
  channel.writeLine(std::string(kServiceProtocol) + " SUBMIT");
  for (const std::string& line : encodeRequest(request)) {
    channel.writeLine(line);
  }
  channel.writeLine("");

  const ServiceJobPlan plan = planServiceJob(request);
  std::vector<ServiceTaskResult> results(plan.taskCount());
  std::vector<char> seen(plan.taskCount(), 0);
  SubmitOutcome outcome;
  bool done = false;

  std::string line;
  while (!done) {
    if (!channel.readLine(&line)) {
      throw std::runtime_error(
          "submit: server closed the connection mid-job");
    }
    const std::vector<std::string> words = splitWords(line);
    if (words.empty()) continue;
    if (words[0] == "ERROR") {
      throw std::runtime_error("server: " +
                               (line.size() > 6 ? line.substr(6) : line));
    }
    if (words[0] == kServiceProtocol) {
      // DYNBCAST/1 ACCEPTED job=<id> tasks=<T>
      if (words.size() != 4 || words[1] != "ACCEPTED") {
        throw std::runtime_error("submit: unexpected greeting '" + line +
                                 "'");
      }
      outcome.jobId = valueOf(line, words[2], "job");
      const std::size_t tasks =
          parseCount(line, valueOf(line, words[3], "tasks"));
      if (tasks != plan.taskCount()) {
        throw std::runtime_error(
            "submit: server plans " + std::to_string(tasks) +
            " tasks where the client plans " +
            std::to_string(plan.taskCount()) +
            " — client and server disagree about the request");
      }
      continue;
    }
    if (words[0] == "PROGRESS") {
      if (progress != nullptr) *progress << "service: " << line << '\n';
      continue;
    }
    if (words[0] == "TASK") {
      if (words.size() != 4) {
        throw std::runtime_error("submit: malformed server line '" + line +
                                 "'");
      }
      const std::size_t position = parseCount(line, words[1]);
      if (position >= plan.taskCount()) {
        throw std::runtime_error("submit: task position " +
                                 std::to_string(position) +
                                 " out of range");
      }
      results[position].rounds = parseCount(line, words[2]);
      results[position].completed = words[3] == "1";
      seen[position] = 1;
      continue;
    }
    if (words[0] == "STATS") {
      // STATS tasks=<T> resumed=<R> cache-hits=<H> executed=<E>
      if (words.size() != 5) {
        throw std::runtime_error("submit: malformed server line '" + line +
                                 "'");
      }
      outcome.tasks = parseCount(line, valueOf(line, words[1], "tasks"));
      outcome.resumed =
          parseCount(line, valueOf(line, words[2], "resumed"));
      outcome.cacheHits =
          parseCount(line, valueOf(line, words[3], "cache-hits"));
      outcome.executed =
          parseCount(line, valueOf(line, words[4], "executed"));
      continue;
    }
    if (words[0] == "DONE") {
      done = true;
      continue;
    }
    throw std::runtime_error("submit: unexpected server line '" + line +
                             "'");
  }

  for (std::size_t position = 0; position < plan.taskCount(); ++position) {
    if (seen[position] == 0) {
      throw std::runtime_error("submit: server never reported task " +
                               std::to_string(position));
    }
  }

  const std::vector<ServiceTaskResult> rowResults(
      results.begin(), results.begin() + static_cast<std::ptrdiff_t>(
                                              plan.rowCount));
  outcome.rows = assembleServiceRows(request.scenario, rowResults);
  outcome.instances =
      aggregateScenarioInstances(request.scenario, outcome.rows);
  outcome.beamRounds.reserve(plan.beamCount);
  for (std::size_t i = 0; i < plan.beamCount; ++i) {
    outcome.beamRounds.push_back(results[plan.rowCount + i].rounds);
  }
  return outcome;
}

}  // namespace dynbcast
