#include "src/service/protocol.h"

#include <algorithm>
#include <stdexcept>

#include "src/dynamics/registry.h"
#include "src/engine/task_plan.h"
#include "src/support/options.h"
#include "src/support/spec.h"

namespace dynbcast {

namespace {

[[nodiscard]] std::vector<std::string> splitOn(const std::string& text,
                                               char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == delimiter) {
      if (!current.empty()) parts.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

[[nodiscard]] std::string joinWith(const std::vector<std::string>& parts,
                                   char delimiter) {
  std::string joined;
  for (const std::string& part : parts) {
    if (!joined.empty()) joined += delimiter;
    joined += part;
  }
  return joined;
}

[[nodiscard]] std::uint64_t parseUInt(const std::string& key,
                                      const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("request key '" + key +
                                "' expects an unsigned integer, got '" +
                                value + "'");
  }
  return std::stoull(value);
}

/// Spec strings never contain whitespace in canonical form, but raw user
/// input may ("freeze-path: depth=3" parses fine). The wire format is
/// space-delimited at the canonical-string level, so strip.
[[nodiscard]] std::string stripSpaces(std::string text) {
  text.erase(std::remove_if(text.begin(), text.end(),
                            [](char c) { return c == ' ' || c == '\t'; }),
             text.end());
  return text;
}

}  // namespace

bool requestWantsBeamWitnesses(const ServiceRequest& request) {
  return request.scenario.objective == Objective::kBroadcast &&
         DynamicsSpec::parse(request.scenario.dynamics).toString() ==
             "rooted-tree";
}

std::vector<std::string> encodeRequest(const ServiceRequest& request) {
  const ScenarioSpec& spec = request.scenario;
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);

  // Keys are emitted in sorted order so the line list IS the canonical
  // form — no separate normalization pass.
  std::vector<std::string> lines;
  if (entry.mode == DynamicsMode::kGraphModel) {
    // Graph models take no adversaries; a non-empty list is a spec error
    // the server must see verbatim so validateScenario rejects it.
    if (!spec.adversaries.empty()) {
      lines.push_back("adversaries=" +
                      stripSpaces(joinWith(spec.adversaries, ';')));
    }
  } else {
    lines.push_back("adversaries=" +
                    joinWith(resolvedScenarioMemberSpecs(spec), ';'));
  }
  lines.push_back("backend=" + backendChoiceName(spec.backend));
  if (requestWantsBeamWitnesses(request)) {
    lines.push_back("beam-maxn=" + std::to_string(request.beamMaxN));
    lines.push_back("beam-width=" + std::to_string(request.beamWidth));
  }
  lines.push_back("cap=" + std::to_string(spec.roundCap));
  lines.push_back("dynamics=" + dynamics.toString());
  lines.push_back("objective=" + objectiveName(spec.objective));
  lines.push_back("seed=" + std::to_string(spec.masterSeed));
  lines.push_back("seeds=" + std::to_string(spec.seedsPerSize));
  std::string sizes;
  for (const std::size_t n : spec.sizes) {
    if (!sizes.empty()) sizes += ',';
    sizes += std::to_string(n);
  }
  lines.push_back("sizes=" + sizes);
  return lines;
}

ServiceRequest decodeRequest(const std::vector<std::string>& lines) {
  static const std::vector<std::string> kKnownKeys = {
      "adversaries", "backend", "beam-maxn", "beam-width", "cap",
      "dynamics",    "objective", "seed",    "seeds",      "sizes"};
  ServiceRequest request;
  bool sawSizes = false;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed request line '" + line +
                                  "' (expected key=value)");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "adversaries") {
      request.scenario.adversaries = splitOn(value, ';');
    } else if (key == "backend") {
      request.scenario.backend = parseBackendChoice(value);
    } else if (key == "beam-maxn") {
      request.beamMaxN = parseUInt(key, value);
    } else if (key == "beam-width") {
      request.beamWidth = parseUInt(key, value);
    } else if (key == "cap") {
      request.scenario.roundCap = parseUInt(key, value);
    } else if (key == "dynamics") {
      request.scenario.dynamics = value;
    } else if (key == "objective") {
      request.scenario.objective = parseObjective(value);
    } else if (key == "seed") {
      request.scenario.masterSeed = parseUInt(key, value);
    } else if (key == "seeds") {
      request.scenario.seedsPerSize = parseUInt(key, value);
    } else if (key == "sizes") {
      request.scenario.sizes = parseSizeList(value);
      sawSizes = true;
    } else {
      std::string message = "unknown request key '" + key + "'";
      const std::string suggestion = closestMatch(key, kKnownKeys);
      if (!suggestion.empty()) {
        message += "; did you mean '" + suggestion + "'?";
      }
      throw std::invalid_argument(message);
    }
  }
  if (!sawSizes) {
    throw std::invalid_argument("request is missing the 'sizes' key");
  }
  return request;
}

std::string canonicalRequestString(const ServiceRequest& request) {
  std::string canonical;
  for (const std::string& line : encodeRequest(request)) {
    if (!canonical.empty()) canonical += ' ';
    canonical += line;
  }
  return canonical;
}

ServiceRequest decodeCanonicalRequest(const std::string& text) {
  return decodeRequest(splitOn(text, ' '));
}

std::string requestJobId(const ServiceRequest& request) {
  return hex64(fnv1a64(canonicalRequestString(request)));
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return hex;
}

}  // namespace dynbcast
