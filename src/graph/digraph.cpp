#include "src/graph/digraph.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

Digraph::Digraph(std::size_t n) : out_(n), in_(n) {}

Digraph Digraph::fromMatrix(const BitMatrix& m) {
  Digraph g(m.dim());
  for (std::size_t x = 0; x < m.dim(); ++x) {
    const DynBitset& r = m.row(x);
    for (std::size_t y = r.findFirst(); y < m.dim(); y = r.findNext(y + 1)) {
      g.addEdge(x, y);
    }
  }
  return g;
}

void Digraph::addEdge(std::size_t from, std::size_t to) {
  DYNBCAST_ASSERT(from < out_.size() && to < out_.size());
  auto& o = out_[from];
  const auto it = std::lower_bound(o.begin(), o.end(), to);
  if (it != o.end() && *it == to) return;  // duplicate
  o.insert(it, to);
  auto& i = in_[to];
  i.insert(std::lower_bound(i.begin(), i.end(), from), from);
  ++edges_;
}

bool Digraph::hasEdge(std::size_t from, std::size_t to) const {
  DYNBCAST_ASSERT(from < out_.size() && to < out_.size());
  const auto& o = out_[from];
  return std::binary_search(o.begin(), o.end(), to);
}

BitMatrix Digraph::toMatrix() const {
  BitMatrix m(nodeCount());
  for (std::size_t x = 0; x < nodeCount(); ++x) {
    for (const std::size_t y : out_[x]) m.set(x, y);
  }
  return m;
}

std::vector<Edge> Digraph::edges() const {
  std::vector<Edge> out;
  out.reserve(edges_);
  for (std::size_t x = 0; x < nodeCount(); ++x) {
    for (const std::size_t y : out_[x]) out.push_back({x, y});
  }
  return out;
}

}  // namespace dynbcast
