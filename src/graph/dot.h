// Graphviz DOT export for debugging and documentation figures.
#pragma once

#include <string>

#include "src/graph/bitmatrix.h"

namespace dynbcast {

struct DotStyle {
  bool hideSelfLoops = true;
  std::string graphName = "G";
  std::string rankdir = "TB";
};

/// Renders the graph as Graphviz DOT source.
[[nodiscard]] std::string toDot(const BitMatrix& g, const DotStyle& style = {});

}  // namespace dynbcast
