// Digraph: adjacency-list view of a directed graph on [n].
//
// BitMatrix is the dense analytical representation; Digraph is the sparse
// operational one used by the process simulator (delivering messages along
// edges) and by generators. Conversions between the two are exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/bitmatrix.h"

namespace dynbcast {

struct Edge {
  std::size_t from;
  std::size_t to;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Digraph {
 public:
  Digraph() = default;

  /// Graph on n nodes with no edges.
  explicit Digraph(std::size_t n);

  [[nodiscard]] static Digraph fromMatrix(const BitMatrix& m);

  [[nodiscard]] std::size_t nodeCount() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_; }

  /// Adds edge (from → to). Duplicate edges are ignored.
  void addEdge(std::size_t from, std::size_t to);

  [[nodiscard]] bool hasEdge(std::size_t from, std::size_t to) const;

  /// Out-neighbors of x (ascending).
  [[nodiscard]] const std::vector<std::size_t>& outNeighbors(
      std::size_t x) const noexcept {
    return out_[x];
  }

  /// In-neighbors of y (ascending).
  [[nodiscard]] const std::vector<std::size_t>& inNeighbors(
      std::size_t y) const noexcept {
    return in_[y];
  }

  [[nodiscard]] std::size_t outDegree(std::size_t x) const noexcept {
    return out_[x].size();
  }
  [[nodiscard]] std::size_t inDegree(std::size_t y) const noexcept {
    return in_[y].size();
  }

  [[nodiscard]] BitMatrix toMatrix() const;

  /// All edges in (from, to) lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

 private:
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
  std::size_t edges_ = 0;
};

}  // namespace dynbcast
