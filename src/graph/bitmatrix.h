// BitMatrix: a square boolean matrix with DynBitset rows.
//
// This is the paper's central object. Interpreted as a directed graph on
// [n], entry (x, y) == 1 means "x has an edge to y" — equivalently, after
// t rounds of composition, "y has heard of x by round t".
//
// The product (Definition 2.1 of the paper) is boolean matrix
// multiplication: (A ∘ B)(x, y) = 1 iff ∃z: A(x, z) ∧ B(z, y). Using
// row-bitset representation the product costs O(n^2 · n/64) in general and
// O(n^2/64) when B is a rooted tree (each node has in-degree ≤ 2 counting
// the self-loop), which is what the simulator exploits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/support/bitset.h"

namespace dynbcast {

class BitMatrix {
 public:
  /// Zero matrix of dimension 0.
  BitMatrix() = default;

  /// n×n zero matrix.
  explicit BitMatrix(std::size_t n);

  /// n×n identity (the product's neutral element; also G(0)).
  [[nodiscard]] static BitMatrix identity(std::size_t n);

  /// n×n all-ones matrix (the absorbing state of gossip).
  [[nodiscard]] static BitMatrix full(std::size_t n);

  [[nodiscard]] std::size_t dim() const noexcept { return n_; }

  [[nodiscard]] bool get(std::size_t x, std::size_t y) const noexcept {
    return rows_[x].test(y);
  }
  void set(std::size_t x, std::size_t y) noexcept { rows_[x].set(y); }
  void reset(std::size_t x, std::size_t y) noexcept { rows_[x].reset(y); }

  /// Row x as a bitset: the out-neighborhood of x (who x reaches).
  [[nodiscard]] const DynBitset& row(std::size_t x) const noexcept {
    return rows_[x];
  }
  [[nodiscard]] DynBitset& row(std::size_t x) noexcept { return rows_[x]; }

  /// Column y materialized as a bitset: the in-neighborhood of y.
  [[nodiscard]] DynBitset column(std::size_t y) const;

  /// Boolean matrix product: this ∘ other (Definition 2.1). Dispatches to
  /// the blocked kernel below; the result is identical to the textbook
  /// row-gather loop.
  [[nodiscard]] BitMatrix product(const BitMatrix& other) const;

  /// Cache-blocked boolean product: `other`'s rows are consumed in blocks
  /// of 64 (one left-operand word per row), so each block stays hot in
  /// cache while all n output rows accumulate into it — the word-level
  /// analogue of tiling a dense matmul. Same result as product().
  [[nodiscard]] BitMatrix productBlocked(const BitMatrix& other) const;

  /// In-place union of entries.
  void orWith(const BitMatrix& other);

  [[nodiscard]] BitMatrix transposed() const;

  /// Total number of 1 entries.
  [[nodiscard]] std::size_t countOnes() const noexcept;

  /// True when every diagonal entry is 1 (all self-loops present).
  [[nodiscard]] bool isReflexive() const noexcept;

  /// True when every entry is 1.
  [[nodiscard]] bool isFull() const noexcept;

  /// Rows x with row(x).all(): processes that have reached everyone.
  [[nodiscard]] std::vector<std::size_t> completeRows() const;

  /// Set of x contained in every row? No — the broadcast test: nodes x
  /// such that column(x) is full, i.e. everyone has heard of x.
  [[nodiscard]] std::vector<std::size_t> broadcasters() const;

  /// True when some node has an out-edge to every node (broadcast done).
  [[nodiscard]] bool hasBroadcaster() const noexcept;

  friend bool operator==(const BitMatrix& a, const BitMatrix& b) noexcept {
    return a.n_ == b.n_ && a.rows_ == b.rows_;
  }

  /// 64-bit content hash (for memoized game search).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// Multi-line "0/1" rendering, row per line.
  [[nodiscard]] std::string toString() const;

 private:
  std::size_t n_ = 0;
  std::vector<DynBitset> rows_;
};

std::ostream& operator<<(std::ostream& os, const BitMatrix& m);

}  // namespace dynbcast
