#include "src/graph/properties.h"

#include <vector>

#include "src/support/assert.h"

namespace dynbcast {

DynBitset reachableFrom(const BitMatrix& g, std::size_t start) {
  const std::size_t n = g.dim();
  DYNBCAST_ASSERT(start < n);
  DynBitset seen(n);
  std::vector<std::size_t> stack{start};
  seen.set(start);
  while (!stack.empty()) {
    const std::size_t x = stack.back();
    stack.pop_back();
    const DynBitset& row = g.row(x);
    for (std::size_t y = row.findFirst(); y < n; y = row.findNext(y + 1)) {
      if (!seen.test(y)) {
        seen.set(y);
        stack.push_back(y);
      }
    }
  }
  return seen;
}

bool isRooted(const BitMatrix& g) { return findRoot(g).has_value(); }

std::optional<std::size_t> findRoot(const BitMatrix& g) {
  const std::size_t n = g.dim();
  if (n == 0) return std::nullopt;
  // A candidate root must reach everyone; checking all n starts is O(n·m)
  // worst case, but we first use a classic trick: run one DFS from node 0;
  // any root must reach 0's entire reach-set... that only prunes in one
  // direction, so for clarity we simply test each node (dims here are
  // small when this predicate is used — validation and tests).
  for (std::size_t x = 0; x < n; ++x) {
    if (reachableFrom(g, x).all()) return x;
  }
  return std::nullopt;
}

bool isNonsplit(const BitMatrix& g) {
  const std::size_t n = g.dim();
  // Pair (y1, y2) needs a common in-neighbor: columns y1 and y2 intersect.
  // Materializing the transpose makes each pair test O(n/64).
  const BitMatrix t = g.transposed();
  for (std::size_t y1 = 0; y1 < n; ++y1) {
    for (std::size_t y2 = y1; y2 < n; ++y2) {
      if (!t.row(y1).intersects(t.row(y2))) return false;
    }
  }
  return true;
}

bool isRootedTreeWithSelfLoops(const BitMatrix& g) {
  const std::size_t n = g.dim();
  if (n == 0) return false;
  if (!g.isReflexive()) return false;
  // Count non-loop in-edges: every node needs exactly one tree parent,
  // except a unique root with none.
  std::vector<std::size_t> parent(n, n);
  std::size_t rootCount = 0;
  std::size_t root = n;
  const BitMatrix t = g.transposed();
  for (std::size_t y = 0; y < n; ++y) {
    std::size_t deg = 0;
    std::size_t p = n;
    const DynBitset& col = t.row(y);
    for (std::size_t x = col.findFirst(); x < n; x = col.findNext(x + 1)) {
      if (x == y) continue;  // self-loop
      ++deg;
      p = x;
    }
    if (deg == 0) {
      ++rootCount;
      root = y;
    } else if (deg == 1) {
      parent[y] = p;
    } else {
      return false;
    }
  }
  if (rootCount != 1) return false;
  // Also check out-edges contain nothing beyond loops + parent links
  // (they can't: we derived parents from the full edge set) and that the
  // parent structure is acyclic, i.e. every node walks up to the root.
  for (std::size_t y = 0; y < n; ++y) {
    std::size_t steps = 0;
    std::size_t cur = y;
    while (cur != root) {
      cur = parent[cur];
      if (cur == n || ++steps > n) return false;
    }
  }
  // Finally, total edge count must be exactly n self-loops + (n-1) tree
  // edges — excludes extra forward edges hiding behind valid in-degrees.
  return g.countOnes() == 2 * n - 1;
}

std::size_t treeDepth(const BitMatrix& g) {
  DYNBCAST_ASSERT_MSG(isRootedTreeWithSelfLoops(g),
                      "treeDepth requires a member of T_n");
  const std::size_t n = g.dim();
  // BFS from the root along non-loop edges.
  const BitMatrix t = g.transposed();
  std::size_t root = n;
  for (std::size_t y = 0; y < n; ++y) {
    if (t.row(y).count() == 1) {  // only the self-loop
      root = y;
      break;
    }
  }
  DYNBCAST_ASSERT(root < n);
  std::vector<std::size_t> depth(n, 0);
  std::vector<std::size_t> queue{root};
  std::size_t maxDepth = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t x = queue[qi];
    const DynBitset& row = g.row(x);
    for (std::size_t y = row.findFirst(); y < n; y = row.findNext(y + 1)) {
      if (y == x) continue;
      depth[y] = depth[x] + 1;
      maxDepth = std::max(maxDepth, depth[y]);
      queue.push_back(y);
    }
  }
  return maxDepth;
}

}  // namespace dynbcast
