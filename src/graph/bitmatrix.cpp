#include "src/graph/bitmatrix.h"

#include <bit>
#include <ostream>

#include "src/support/assert.h"

namespace dynbcast {

BitMatrix::BitMatrix(std::size_t n) : n_(n), rows_(n, DynBitset(n)) {}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i);
  return m;
}

BitMatrix BitMatrix::full(std::size_t n) {
  BitMatrix m(n);
  for (auto& r : m.rows_) r.setAll();
  return m;
}

DynBitset BitMatrix::column(std::size_t y) const {
  DYNBCAST_ASSERT(y < n_);
  DynBitset col(n_);
  for (std::size_t x = 0; x < n_; ++x) {
    if (rows_[x].test(y)) col.set(x);
  }
  return col;
}

BitMatrix BitMatrix::product(const BitMatrix& other) const {
  return productBlocked(other);
}

BitMatrix BitMatrix::productBlocked(const BitMatrix& other) const {
  DYNBCAST_ASSERT(n_ == other.n_);
  BitMatrix out(n_);
  if (n_ == 0) return out;
  const std::size_t nwords = rows_[0].wordCount();
  // z-block outer loop: the 64 rows other.rows_[zw*64 .. zw*64+63] are
  // reused by every x before the block is evicted. Within a block, set
  // bits of the left word select which rows to OR in.
  for (std::size_t zw = 0; zw < nwords; ++zw) {
    const std::size_t zBase = zw * DynBitset::kBits;
    for (std::size_t x = 0; x < n_; ++x) {
      std::uint64_t w = rows_[x].words()[zw];
      std::uint64_t* outRow = out.rows_[x].wordData();
      while (w != 0) {
        const auto z =
            zBase + static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;
        bitword::orAssign(outRow, other.rows_[z].wordData(), nwords);
      }
    }
  }
  return out;
}

void BitMatrix::orWith(const BitMatrix& other) {
  DYNBCAST_ASSERT(n_ == other.n_);
  for (std::size_t x = 0; x < n_; ++x) rows_[x].orWith(other.rows_[x]);
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix out(n_);
  for (std::size_t x = 0; x < n_; ++x) {
    const DynBitset& r = rows_[x];
    for (std::size_t y = r.findFirst(); y < n_; y = r.findNext(y + 1)) {
      out.set(y, x);
    }
  }
  return out;
}

std::size_t BitMatrix::countOnes() const noexcept {
  std::size_t c = 0;
  for (const auto& r : rows_) c += r.count();
  return c;
}

bool BitMatrix::isReflexive() const noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    if (!rows_[i].test(i)) return false;
  }
  return true;
}

bool BitMatrix::isFull() const noexcept {
  for (const auto& r : rows_) {
    if (!r.all()) return false;
  }
  return true;
}

std::vector<std::size_t> BitMatrix::completeRows() const {
  std::vector<std::size_t> out;
  out.reserve(n_);
  for (std::size_t x = 0; x < n_; ++x) {
    if (rows_[x].all()) out.push_back(x);
  }
  return out;
}

std::vector<std::size_t> BitMatrix::broadcasters() const {
  // x is a broadcaster iff (x, y) == 1 for every y, i.e. row(x) is full.
  // (Rows are reach-sets under our orientation; see bitmatrix.h.)
  return completeRows();
}

bool BitMatrix::hasBroadcaster() const noexcept {
  for (const auto& r : rows_) {
    if (r.all()) return true;
  }
  return false;
}

std::uint64_t BitMatrix::hash() const noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ull ^ n_;
  for (const auto& r : rows_) {
    h ^= r.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string BitMatrix::toString() const {
  std::string s;
  s.reserve(n_ * (n_ + 1));
  for (const auto& r : rows_) {
    s += r.toString();
    s.push_back('\n');
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const BitMatrix& m) {
  return os << m.toString();
}

}  // namespace dynbcast
