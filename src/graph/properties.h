// Structural predicates on directed graphs, phrased on BitMatrix.
//
// These implement the model-side definitions the paper and its cited
// results rely on: rooted (some node reaches everyone), nonsplit (every
// pair of nodes has a common in-neighbor, per Charron-Bost & Schiper),
// and rooted-tree-with-self-loops membership in T_n.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/bitmatrix.h"

namespace dynbcast {

/// Nodes reachable from `start` (including itself) following edges forward.
[[nodiscard]] DynBitset reachableFrom(const BitMatrix& g, std::size_t start);

/// True when some node reaches all others (the graph is "rooted").
[[nodiscard]] bool isRooted(const BitMatrix& g);

/// A node that reaches all others, if one exists.
[[nodiscard]] std::optional<std::size_t> findRoot(const BitMatrix& g);

/// True when every pair of nodes (including pairs (y,y)) has a common
/// in-neighbor. This is the "nonsplit" property of [2]/[9].
[[nodiscard]] bool isNonsplit(const BitMatrix& g);

/// True when g is exactly a rooted tree on [n] plus one self-loop per node
/// — i.e. a member of the adversary's pool T_n (paper §2):
/// every node has the self-loop; the root has in-degree 1 (just the loop);
/// every other node has in-degree 2 (loop + tree parent); tree edges are
/// acyclic and connect everyone to the root.
[[nodiscard]] bool isRootedTreeWithSelfLoops(const BitMatrix& g);

/// Longest directed distance from the root along tree edges; the broadcast
/// time of the *static* adversary repeating this tree. Requires
/// isRootedTreeWithSelfLoops(g).
[[nodiscard]] std::size_t treeDepth(const BitMatrix& g);

}  // namespace dynbcast
