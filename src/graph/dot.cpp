#include "src/graph/dot.h"

#include <sstream>

namespace dynbcast {

std::string toDot(const BitMatrix& g, const DotStyle& style) {
  std::ostringstream os;
  os << "digraph " << style.graphName << " {\n";
  os << "  rankdir=" << style.rankdir << ";\n";
  os << "  node [shape=circle];\n";
  const std::size_t n = g.dim();
  for (std::size_t x = 0; x < n; ++x) {
    os << "  n" << x << " [label=\"" << x << "\"];\n";
  }
  for (std::size_t x = 0; x < n; ++x) {
    const DynBitset& row = g.row(x);
    for (std::size_t y = row.findFirst(); y < n; y = row.findNext(y + 1)) {
      if (style.hideSelfLoops && x == y) continue;
      os << "  n" << x << " -> n" << y << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dynbcast
